package server

// End-to-end tests for the tracing surface: inline ?trace=1 profiles on
// partitioned and indexed queries, the sampled-out fast path, the
// debug/traces and debug/slow rings, stage aggregation into metrics,
// and the pprof mount gate.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"expfinder/internal/dataset"
	"expfinder/internal/engine"
	"expfinder/internal/trace"
)

// queryWithTrace posts a bounded query with ?trace=1 and decodes the
// response plan plus the inline trace.
func queryWithTrace(t *testing.T, ts *httptest.Server) (string, *trace.TraceJSON) {
	t.Helper()
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/synth/query?trace=1",
		map[string]any{"dsl": dataset.PaperQueryDSL, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr struct {
		Plan  string           `json:"plan"`
		Trace *trace.TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil || qr.Trace.Root == nil {
		t.Fatalf("no inline trace in response: %s", body)
	}
	return qr.Plan, qr.Trace
}

// checkSpanTree asserts the structural invariant that makes a profile
// trustworthy: every span's children ran within it, so their summed
// durations cannot exceed the parent's.
func checkSpanTree(t *testing.T, sp *trace.SpanJSON) {
	t.Helper()
	var childSum int64
	for _, c := range sp.Children {
		childSum += c.DurationUS
		checkSpanTree(t, c)
	}
	if childSum > sp.DurationUS {
		t.Errorf("span %s: children sum to %dus > own %dus", sp.Name, childSum, sp.DurationUS)
	}
}

func findSpan(tj *trace.TraceJSON, name string) *trace.SpanJSON {
	var got *trace.SpanJSON
	tj.Walk(func(sp *trace.SpanJSON) {
		if got == nil && sp.Name == name {
			got = sp
		}
	})
	return got
}

func TestInlineTracePartitionedQuery(t *testing.T) {
	// Sample rate zero: only the explicit ?trace=1 request is traced.
	ts, _ := newConfiguredServer(t, Config{TraceSample: 0})
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/synth",
		`{"generator": {"kind": "collab", "nodes": 300, "avg_degree": 4, "seed": 7}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/api/v1/graphs/synth/partitions", `{"parts": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build partitions: %d %s", resp.StatusCode, body)
	}

	plan, tj := queryWithTrace(t, ts)
	if plan != string(engine.PlanPartitioned) {
		t.Fatalf("plan = %s, want partitioned", plan)
	}
	checkSpanTree(t, tj.Root)

	eq := findSpan(tj, "engine.query")
	if eq == nil {
		t.Fatal("no engine.query span")
	}
	if p, _ := eq.Attrs["plan"].(string); p != string(engine.PlanPartitioned) {
		t.Fatalf("engine.query plan attr = %v", eq.Attrs["plan"])
	}
	ep := findSpan(tj, "eval.partitioned")
	if ep == nil {
		t.Fatal("no eval.partitioned span")
	}
	// Supersteps reported on the eval span match the superstep child
	// spans actually emitted.
	steps := 0
	tj.Walk(func(sp *trace.SpanJSON) {
		if sp.Name == "superstep" {
			steps++
		}
	})
	if want, _ := ep.Attrs["supersteps"].(float64); int(want) != steps || steps == 0 {
		t.Fatalf("superstep spans = %d, eval attr = %v", steps, ep.Attrs["supersteps"])
	}
}

func TestInlineTraceIndexedQuery(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{TraceSample: 0})
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/synth",
		`{"generator": {"kind": "collab", "nodes": 300, "avg_degree": 4, "seed": 7}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/api/v1/graphs/synth/index", `{"landmarks": 8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build index: %d %s", resp.StatusCode, body)
	}

	plan, tj := queryWithTrace(t, ts)
	if plan != string(engine.PlanIndexed) {
		t.Fatalf("plan = %s, want indexed", plan)
	}
	checkSpanTree(t, tj.Root)
	ei := findSpan(tj, "eval.indexed")
	if ei == nil {
		t.Fatal("no eval.indexed span")
	}
	if _, ok := ei.Attrs["probes"]; !ok {
		t.Fatalf("eval.indexed attrs = %v, want oracle probe counts", ei.Attrs)
	}
}

func TestUntracedRequestHasNoTrace(t *testing.T) {
	ts, srv := newConfiguredServer(t, Config{TraceSample: 0})
	uploadPaperGraph(t, ts)
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/paper/query",
		map[string]any{"dsl": dataset.PaperQueryDSL, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), `"trace"`) {
		t.Fatalf("sampled-out response carries a trace: %s", body)
	}
	resp, body = do(t, "GET", ts.URL+"/api/v1/debug/traces", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces: %d %s", resp.StatusCode, body)
	}
	var dt struct {
		Traces []*trace.TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(body, &dt); err != nil {
		t.Fatal(err)
	}
	if len(dt.Traces) != 0 {
		t.Fatalf("tracer ring has %d traces at sample 0", len(dt.Traces))
	}
	_ = srv
}

func TestDebugTracesAndSlowLog(t *testing.T) {
	// Everything sampled; any request over 1ns is "slow".
	ts, _ := newConfiguredServer(t, Config{TraceSample: 1, SlowQuery: time.Nanosecond})
	uploadPaperGraph(t, ts)
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/paper/query",
		map[string]any{"dsl": dataset.PaperQueryDSL, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	resp, body = do(t, "GET", ts.URL+"/api/v1/debug/traces", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces: %d %s", resp.StatusCode, body)
	}
	var dt struct {
		Traces []*trace.TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(body, &dt); err != nil {
		t.Fatal(err)
	}
	var q *trace.TraceJSON
	for _, tj := range dt.Traces {
		if tj.Name == "query" {
			q = tj
		}
	}
	if q == nil || q.ID == "" || q.Root == nil {
		t.Fatalf("query trace missing from ring: %s", body)
	}

	resp, body = do(t, "GET", ts.URL+"/api/v1/debug/slow", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/slow: %d %s", resp.StatusCode, body)
	}
	var ds struct {
		ThresholdUS int64              `json:"threshold_us"`
		Entries     []*trace.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(body, &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds.Entries) == 0 {
		t.Fatalf("no slow entries below a 1ns threshold: %s", body)
	}
	for _, e := range ds.Entries {
		if e.Route == "query" && e.Trace == nil {
			t.Fatalf("slow query entry lost its trace: %+v", e)
		}
	}
}

func TestStageHistogramAggregation(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{TraceSample: 1})
	uploadPaperGraph(t, ts)
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/paper/query",
		map[string]any{"dsl": dataset.PaperQueryDSL, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, `expfinder_query_stage_duration_seconds`) ||
		!strings.Contains(text, `stage="engine.query"`) {
		t.Fatalf("stage histogram not aggregated:\n%s", text)
	}
}

func TestPprofMountGatedByDebugFlag(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{})
	resp, _ := do(t, "GET", ts.URL+"/debug/pprof/cmdline", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -debug: %d, want 404", resp.StatusCode)
	}

	ts2, _ := newConfiguredServer(t, Config{Debug: true})
	resp, body := do(t, "GET", ts2.URL+"/debug/pprof/cmdline", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with -debug: %d %s", resp.StatusCode, body)
	}

	// With auth configured, pprof demands the bearer token too.
	ts3, _ := newConfiguredServer(t, Config{Debug: true, AuthToken: "s3cret"})
	resp, _ = do(t, "GET", ts3.URL+"/debug/pprof/cmdline", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("pprof without token: %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest("GET", ts3.URL+"/debug/pprof/cmdline", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("pprof with token: %d", r2.StatusCode)
	}
}
