package server

// Serving-tier surface of the statistics subsystem: build-info
// identification, the per-graph statistics gauges, and the
// plan-outcome recorder that turns finished traces into the rolling
// summaries served at GET /api/v1/stats/queries.

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"

	"expfinder/internal/api"
	"expfinder/internal/metrics"
	"expfinder/internal/stats"
)

// buildVersion resolves the binary's version from the embedded build
// info: the module version when built from a tagged release, else the
// VCS revision, else "unknown" (go test binaries).
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + modified
	}
	return "unknown"
}

// buildInfo is the identification block exposed as the
// expfinder_build_info gauge and echoed in /healthz.
func buildInfo() api.BuildInfo {
	return api.BuildInfo{
		Version:    buildVersion(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// registerStatsMetrics wires the statistics subsystem into the metrics
// registry: the constant build_info series, per-graph graph-shape
// gauges sampled from the engine's online statistics, and per-
// (graph, plan) plan-outcome series from the recorder.
func (s *Server) registerStatsMetrics() {
	bi := buildInfo()
	s.registry.NewGaugeVecFunc("expfinder_build_info",
		"Build identification; the value is always 1, the labels carry the info.",
		[]string{"version", "go_version", "gomaxprocs"},
		func() []metrics.LabeledValue {
			return []metrics.LabeledValue{{
				Labels: []string{bi.Version, bi.GoVersion, strconv.Itoa(bi.GOMAXPROCS)},
				Value:  1,
			}}
		})

	// One snapshot pass serves all per-graph families: each scrape walks
	// the graphs once and fans the snapshot out per metric.
	graphSnapshots := func() map[string]*stats.Snapshot {
		out := map[string]*stats.Snapshot{}
		for _, name := range s.eng.ListGraphs() {
			if snap, err := s.eng.GraphStatistics(name); err == nil && snap != nil {
				out[name] = snap
			}
		}
		return out
	}
	s.registry.NewGaugeVecFunc("expfinder_graph_nodes",
		"Nodes per managed graph, from the online statistics.",
		[]string{"graph"}, func() []metrics.LabeledValue {
			var out []metrics.LabeledValue
			for name, snap := range graphSnapshots() {
				out = append(out, metrics.LabeledValue{Labels: []string{name}, Value: float64(snap.Nodes)})
			}
			return out
		})
	s.registry.NewGaugeVecFunc("expfinder_graph_edges",
		"Edges per managed graph, from the online statistics.",
		[]string{"graph"}, func() []metrics.LabeledValue {
			var out []metrics.LabeledValue
			for name, snap := range graphSnapshots() {
				out = append(out, metrics.LabeledValue{Labels: []string{name}, Value: float64(snap.Edges)})
			}
			return out
		})
	s.registry.NewGaugeVecFunc("expfinder_graph_distinct_labels",
		"Distinct node labels per managed graph.",
		[]string{"graph"}, func() []metrics.LabeledValue {
			var out []metrics.LabeledValue
			for name, snap := range graphSnapshots() {
				out = append(out, metrics.LabeledValue{Labels: []string{name}, Value: float64(len(snap.Labels))})
			}
			return out
		})
	s.registry.NewCounterVecFunc("expfinder_graph_stats_rebuilds_total",
		"From-scratch statistic recounts per graph (1 is the build at registration; more means a reader caught a stale stamp).",
		[]string{"graph"}, func() []metrics.LabeledValue {
			var out []metrics.LabeledValue
			for _, name := range s.eng.ListGraphs() {
				if n, err := s.eng.StatsRebuilds(name); err == nil && n > 0 {
					out = append(out, metrics.LabeledValue{Labels: []string{name}, Value: float64(n)})
				}
			}
			return out
		})

	s.registry.NewCounterVecFunc("expfinder_plan_outcome_total",
		"Traced query outcomes aggregated by graph and plan.",
		[]string{"graph", "plan"}, func() []metrics.LabeledValue {
			var out []metrics.LabeledValue
			for _, t := range s.recorder.PlanTotals() {
				out = append(out, metrics.LabeledValue{Labels: []string{t.Graph, t.Plan}, Value: float64(t.Count)})
			}
			return out
		})
	s.registry.NewGaugeVecFunc("expfinder_plan_outcome_p95_seconds",
		"p95 traced query latency over the retained sample window, by graph and plan.",
		[]string{"graph", "plan"}, func() []metrics.LabeledValue {
			var out []metrics.LabeledValue
			for _, t := range s.recorder.PlanTotals() {
				out = append(out, metrics.LabeledValue{Labels: []string{t.Graph, t.Plan}, Value: float64(t.P95US) / 1e6})
			}
			return out
		})
	s.registry.NewCounterFunc("expfinder_plan_outcome_dropped_total",
		"Traced query outcomes discarded because the recorder's key bound was hit.",
		func() float64 { return float64(s.recorder.Dropped()) })
}

// statsQueries serves GET /stats/queries: the plan-outcome rolling
// summaries, busiest bucket first.
func (s *Server) statsQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.QueryStatsResponse{
		Summaries: s.recorder.Summaries(),
		Dropped:   s.recorder.Dropped(),
	})
}
