package server

// Error rendering: every non-2xx response — v1 and legacy alike — is
// the uniform envelope {"error":{"code","message","details"}} from
// internal/api. Handlers pass Go errors; the mapping from error chain
// to (HTTP status, stable code) lives here so no handler invents its
// own.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"expfinder/internal/api"
	"expfinder/internal/engine"
	"expfinder/internal/graph"
	"expfinder/internal/subscribe"
	"expfinder/internal/wal"
)

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeErr renders err as the error envelope, deriving the stable code
// from the error chain (falling back to a status-default code). A
// read-only rejection carries the leader's address in details so a
// client can redirect its write without a second lookup.
func writeErr(w http.ResponseWriter, status int, err error) {
	var details map[string]any
	var ro *engine.ReadOnlyError
	if errors.As(err, &ro) && ro.Leader != "" {
		details = map[string]any{"leader": ro.Leader}
	}
	writeEnvelope(w, status, codeFor(status, err), err.Error(), details)
}

// writeCode renders err under an explicit code, for call sites whose
// context knows more than the error chain (e.g. pattern parsing).
func writeCode(w http.ResponseWriter, status int, code string, err error) {
	writeEnvelope(w, status, code, err.Error(), nil)
}

func writeEnvelope(w http.ResponseWriter, status int, code, message string, details map[string]any) {
	env := api.NewError(code, message)
	env.Error.Details = details
	writeJSON(w, status, env)
}

// statusFor maps engine errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, engine.ErrNoGraph), errors.Is(err, engine.ErrNoIndex),
		errors.Is(err, engine.ErrNoPartition), errors.Is(err, graph.ErrNoNode),
		errors.Is(err, subscribe.ErrNoSubscription):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrGraphExists), errors.Is(err, wal.ErrExists),
		errors.Is(err, engine.ErrNoPersistence):
		return http.StatusConflict
	case errors.Is(err, engine.ErrReadOnly):
		return http.StatusForbidden
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// codeFor derives the stable machine-readable code: the error chain
// decides when it can, the status class otherwise.
func codeFor(status int, err error) string {
	switch {
	case errors.Is(err, engine.ErrNoGraph):
		return api.CodeGraphNotFound
	case errors.Is(err, graph.ErrNoNode):
		return api.CodeNodeNotFound
	case errors.Is(err, engine.ErrNoIndex):
		return api.CodeIndexNotFound
	case errors.Is(err, engine.ErrNoPartition):
		return api.CodePartitionNotFound
	case errors.Is(err, subscribe.ErrNoSubscription):
		return api.CodeSubscriptionNotFound
	case errors.Is(err, engine.ErrGraphExists), errors.Is(err, wal.ErrExists):
		return api.CodeGraphExists
	case errors.Is(err, engine.ErrNoPersistence):
		return api.CodePersistenceDisabled
	case errors.Is(err, engine.ErrReadOnly):
		return api.CodeReadOnly
	case errors.Is(err, context.DeadlineExceeded):
		return api.CodeDeadlineExceeded
	}
	switch status {
	case http.StatusUnauthorized:
		return api.CodeUnauthorized
	case http.StatusNotFound:
		return api.CodeNotFound
	case http.StatusConflict:
		return api.CodeConflict
	case http.StatusTooManyRequests:
		return api.CodeRateLimited
	case http.StatusServiceUnavailable:
		return api.CodeOverloaded
	case http.StatusGatewayTimeout:
		return api.CodeDeadlineExceeded
	case http.StatusInternalServerError:
		return api.CodeInternal
	default:
		return api.CodeInvalidRequest
	}
}
