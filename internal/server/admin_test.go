package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"expfinder/internal/engine"
	"expfinder/internal/graph"
	"expfinder/internal/wal"
)

func durableServer(t *testing.T) (*Server, *engine.Engine) {
	t.Helper()
	m, err := wal.Open(wal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	eng := engine.New(engine.Options{Persistence: m})
	t.Cleanup(func() { eng.Close() })
	return New(eng), eng
}

func TestPersistenceStatsDisabled(t *testing.T) {
	srv := New(engine.New(engine.Options{}))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/admin/persistence", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Enabled {
		t.Fatal("persistence reported enabled on a memory-only engine")
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/admin/persistence/checkpoint", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("checkpoint without persistence: status %d, want 409", rec.Code)
	}
}

func TestPersistenceStatsAndForceCheckpoint(t *testing.T) {
	srv, eng := durableServer(t)
	g := graph.New(0)
	a := g.AddNode("SA", graph.Attrs{"name": graph.String("Ann")})
	b := g.AddNode("SD", nil)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	// Append a couple of records past the initial snapshot.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/graphs/g/updates",
		strings.NewReader(`{"ops":[{"op":"delete","from":0,"to":1},{"op":"insert","from":1,"to":0}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("updates: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/api/admin/persistence", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var stats struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			Policy string `json:"fsync_policy"`
			Graphs []struct {
				Name                 string `json:"name"`
				BytesSinceCheckpoint int64  `json:"bytes_since_checkpoint"`
				SnapshotVersion      uint64 `json:"snapshot_version"`
			} `json:"graphs"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || len(stats.Stats.Graphs) != 1 || stats.Stats.Graphs[0].Name != "g" {
		t.Fatalf("unexpected stats body: %s", rec.Body)
	}
	if stats.Stats.Graphs[0].BytesSinceCheckpoint == 0 {
		t.Fatal("updates did not grow the WAL")
	}
	if stats.Stats.Policy != "interval" {
		t.Fatalf("policy %q, want interval default", stats.Stats.Policy)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/admin/persistence/checkpoint",
		strings.NewReader(`{"graph":"g"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body)
	}
	var ck struct {
		Checkpointed []string `json:"checkpointed"`
		Stats        struct {
			Graphs []struct {
				BytesSinceCheckpoint int64  `json:"bytes_since_checkpoint"`
				SnapshotVersion      uint64 `json:"snapshot_version"`
			} `json:"graphs"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.Checkpointed) != 1 || ck.Checkpointed[0] != "g" {
		t.Fatalf("checkpointed %v", ck.Checkpointed)
	}
	if ck.Stats.Graphs[0].BytesSinceCheckpoint != 0 {
		t.Fatal("force-checkpoint did not truncate the WAL")
	}
	gg, err := eng.Graph("g")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Stats.Graphs[0].SnapshotVersion != gg.Version() {
		t.Fatalf("snapshot at %d, graph at %d", ck.Stats.Graphs[0].SnapshotVersion, gg.Version())
	}

	// Unknown graph -> 404; empty body -> checkpoint everything.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/admin/persistence/checkpoint",
		strings.NewReader(`{"graph":"nope"}`)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/admin/persistence/checkpoint", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint-all: %d %s", rec.Code, rec.Body)
	}
}
