package server

// Admin endpoints for the durable persistence subsystem: stats for
// observability, force-checkpoint for operators who want a bounded
// recovery time before a planned restart (a checkpoint collapses the
// graph's WAL into one snapshot, so the next boot replays nothing).

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"expfinder/internal/api"
	"expfinder/internal/engine"
)

// persistenceStats serves GET /api/v1/admin/persistence: whether durability
// is on, and if so the manager's counters plus per-graph log state.
func (s *Server) persistenceStats(w http.ResponseWriter, r *http.Request) {
	if !s.eng.PersistenceEnabled() {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	st, err := s.eng.PersistenceStats()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"enabled": true, "stats": st})
}

// forceCheckpoint serves POST /api/v1/admin/persistence/checkpoint.
func (s *Server) forceCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.eng.PersistenceEnabled() {
		writeErr(w, http.StatusConflict, engine.ErrNoPersistence)
		return
	}
	var req api.CheckpointRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var checkpointed []string
	if req.Graph != "" {
		if err := s.eng.Checkpoint(req.Graph); err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		checkpointed = []string{req.Graph}
	} else {
		checkpointed = s.eng.ListGraphs()
		if err := s.eng.CheckpointAll(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	st, err := s.eng.PersistenceStats()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpointed": checkpointed,
		"stats":        st,
	})
}
