package server

// Continuous-query endpoints: create/list/delete subscriptions and an
// SSE event stream delivering snapshot + match deltas. The stream speaks
// plain text/event-stream so any EventSource client (or curl) can follow
// a standing query live; graph mutation endpoints fan deltas out as a
// side effect of the engine's update paths.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"expfinder/internal/api"
	"expfinder/internal/match"
	"expfinder/internal/pattern"
	"expfinder/internal/rank"
	"expfinder/internal/subscribe"
)

func (s *Server) createSubscription(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.SubscribeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q, err := parsePattern(api.QueryRequest{Pattern: req.Pattern, DSL: req.DSL})
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidPattern, err)
		return
	}
	sub, err := s.eng.Subscribe(name, q, subscribe.Options{
		K: req.K, Buffer: req.Buffer, NoCoalesce: req.NoCoalesce,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// events_url points back into the surface the client came through, so
	// legacy clients keep legacy URLs and v1 clients get v1 URLs.
	writeJSON(w, http.StatusCreated, api.SubscribeResponse{
		ID:          sub.ID(),
		PatternHash: sub.PatternHash(),
		EventsURL: fmt.Sprintf("%s/graphs/%s/subscriptions/%s/events",
			apiPrefix(r.Context()), name, sub.ID()),
	})
}

func (s *Server) listSubscriptions(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// 404 for unknown graphs, like every other per-graph endpoint.
	if _, err := s.eng.Graph(name); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	infos := s.eng.Subscriptions(name)
	if infos == nil {
		infos = []subscribe.Info{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"subscriptions": infos,
		"stats":         s.eng.SubscriptionStats(),
	})
}

// lookupSub resolves {id} and pins it to the {name} graph so ids cannot
// be read through another graph's URL.
func (s *Server) lookupSub(r *http.Request) (*subscribe.Subscription, error) {
	sub, err := s.eng.Subscription(r.PathValue("id"))
	if err != nil {
		return nil, err
	}
	if sub.GraphName() != r.PathValue("name") {
		return nil, fmt.Errorf("%w: %q on graph %q", subscribe.ErrNoSubscription,
			sub.ID(), r.PathValue("name"))
	}
	return sub, nil
}

func (s *Server) deleteSubscription(w http.ResponseWriter, r *http.Request) {
	sub, err := s.lookupSub(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err := s.eng.Unsubscribe(sub.ID()); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// sseEvent is the wire form of one subscription event. Matches are keyed
// by pattern node name, mirroring the query endpoint's response.
type sseEvent struct {
	Seq     uint64              `json:"seq"`
	Kind    string              `json:"kind"`
	Resync  bool                `json:"resync,omitempty"`
	Pairs   map[string][]int64  `json:"pairs,omitempty"`
	Added   map[string][]int64  `json:"added,omitempty"`
	Removed map[string][]int64  `json:"removed,omitempty"`
	TopK    []subscribeTopEntry `json:"top_k,omitempty"`
}

type subscribeTopEntry struct {
	Node      int64   `json:"node"`
	Rank      float64 `json:"rank"`
	Connected int     `json:"connected"`
}

// groupPairs keys match pairs by pattern node name, mirroring the query
// endpoint's matches map. Ids within a name stay in the event's sorted
// order.
func groupPairs(q *pattern.Pattern, pairs []match.Pair) map[string][]int64 {
	if len(pairs) == 0 {
		return nil
	}
	out := map[string][]int64{}
	for _, p := range pairs {
		name := q.Node(p.PNode).Name
		out[name] = append(out[name], int64(p.Node))
	}
	return out
}

func renderTopK(topk []rank.Ranked) []subscribeTopEntry {
	out := make([]subscribeTopEntry, len(topk))
	for i, t := range topk {
		out[i] = subscribeTopEntry{Node: int64(t.Node), Rank: t.Rank, Connected: t.Connected}
	}
	return out
}

// streamEvents serves GET .../subscriptions/{id}/events as Server-Sent
// Events: one "snapshot" or "delta" event per subscription event, a
// terminal "closed" event when the subscription or its graph goes away.
// Pending invalidations are flushed once at stream start so a subscriber
// attaching after node churn is not left waiting on a stale relation.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	sub, err := s.lookupSub(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	_, _ = s.eng.FlushSubscriptions(sub.GraphName())
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	q := sub.Pattern()
	for {
		ev, err := sub.Next(r.Context().Done())
		if err != nil {
			if closed, cerr := sub.Closed(); closed {
				reason := "closed"
				if errors.Is(cerr, subscribe.ErrGraphRemoved) {
					reason = "graph-removed"
				}
				fmt.Fprintf(w, "event: closed\ndata: {\"reason\":%q}\n\n", reason)
				flusher.Flush()
			}
			return // client went away or subscription closed
		}
		wire := sseEvent{
			Seq: ev.Seq, Kind: string(ev.Kind), Resync: ev.Resync,
			Pairs:   groupPairs(q, ev.Pairs),
			Added:   groupPairs(q, ev.Added),
			Removed: groupPairs(q, ev.Removed),
			TopK:    renderTopK(ev.TopK),
		}
		data, err := json.Marshal(wire)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data); err != nil {
			return
		}
		flusher.Flush()
	}
}

// subscriptionStats exposes the hub's counters.
func (s *Server) subscriptionStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.SubscriptionStats())
}
