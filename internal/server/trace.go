package server

// Query-execution tracing at the serving tier: the withTrace middleware
// starts a trace per sampled (or explicitly requested) request and hands
// the traced context down the chain — engine, matchers, partition
// evaluator, and WAL all emit spans through internal/trace when the
// context carries one. Finished traces land in the tracer's ring
// (GET /api/v1/debug/traces), feed the slow-query log
// (GET /api/v1/debug/slow), and aggregate into per-plan/per-stage
// latency histograms on the metrics registry.

import (
	"net/http"
	"time"

	"expfinder/internal/api"
	"expfinder/internal/trace"
)

// traceRequested reports whether the client explicitly asked for an
// inline trace with ?trace=1 or the X-Trace: 1 header. Forced traces
// bypass the sample rate and are echoed in the response envelope.
func traceRequested(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1" || r.Header.Get("X-Trace") == "1"
}

// withTrace sits between the metrics and auth middlewares: spans cover
// auth, rate limiting, admission waits, and the handler, while the
// request id assigned by withObservability is already on the response
// header. With tracing sampled out and no slow-query threshold the
// request passes through untouched.
func (s *Server) withTrace(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, trc := s.tracer.Start(r.Context(), w.Header().Get("X-Request-ID"),
			route, traceRequested(r))
		if trc == nil && s.tracer.SlowThreshold() <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		if trc != nil {
			r = r.WithContext(ctx)
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		elapsed := time.Since(start)
		var tj *trace.TraceJSON
		if trc != nil {
			tj = s.tracer.Finish(trc)
		}
		status := http.StatusOK
		if sw, ok := w.(*statusWriter); ok && sw.status != 0 {
			status = sw.status
		}
		s.tracer.NoteSlow(w.Header().Get("X-Request-ID"), route, clientKey(r), status, elapsed, tj)
	})
}

// inlineTrace returns the active trace's snapshot when the client asked
// for one inline (?trace=1 / X-Trace: 1); nil otherwise. Taken before
// the middleware finishes the trace, so spans still open (the route
// root, serialization) are measured up to this instant.
func inlineTrace(r *http.Request) *trace.TraceJSON {
	if trc := trace.ActiveTrace(r.Context()); trc != nil && trc.Forced() {
		return trc.Snapshot()
	}
	return nil
}

// aggregateTrace folds one finished trace into the per-plan/per-stage
// histograms. The plan comes from the engine.query span's attribute;
// spans outside a plan (middleware waits, WAL appends) aggregate under
// plan "none".
func (s *Server) aggregateTrace(tj *trace.TraceJSON) {
	plan := "none"
	tj.Walk(func(sp *trace.SpanJSON) {
		if plan == "none" && sp.Name == "engine.query" {
			if p, ok := sp.Attrs["plan"].(string); ok {
				plan = p
			}
		}
	})
	tj.Walk(func(sp *trace.SpanJSON) {
		if sp == tj.Root {
			return // the root duplicates mLatency's request latency
		}
		s.mStage.Observe(float64(sp.DurationUS)/1e6, plan, sp.Name)
	})
}

func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.tracer.Recent()
	if traces == nil {
		traces = []*trace.TraceJSON{}
	}
	writeJSON(w, http.StatusOK, api.DebugTracesResponse{Traces: traces})
}

func (s *Server) debugSlow(w http.ResponseWriter, r *http.Request) {
	entries := s.tracer.Slow()
	if entries == nil {
		entries = []*trace.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, api.DebugSlowResponse{
		ThresholdUS: s.tracer.SlowThreshold().Microseconds(),
		Entries:     entries,
	})
}
