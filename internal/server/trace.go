package server

// Query-execution tracing at the serving tier: the withTrace middleware
// starts a trace per sampled (or explicitly requested) request and hands
// the traced context down the chain — engine, matchers, partition
// evaluator, and WAL all emit spans through internal/trace when the
// context carries one. Finished traces land in the tracer's ring
// (GET /api/v1/debug/traces), feed the slow-query log
// (GET /api/v1/debug/slow), and aggregate into per-plan/per-stage
// latency histograms on the metrics registry.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"expfinder/internal/account"
	"expfinder/internal/api"
	"expfinder/internal/trace"
)

// traceRequested reports whether the client explicitly asked for an
// inline trace with ?trace=1 or the X-Trace: 1 header. Forced traces
// bypass the sample rate and are echoed in the response envelope.
func traceRequested(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1" || r.Header.Get("X-Trace") == "1"
}

// withTrace sits between the metrics and auth middlewares: spans cover
// auth, rate limiting, admission waits, and the handler, while the
// request id assigned by withObservability is already on the response
// header. It is also the accounting charge site — the one place that
// has the client key, final status, elapsed time, response bytes, and
// the finished trace together — so every request is charged regardless
// of sampling, with trace-derived cost detail riding along when the
// request happened to be traced. With tracing sampled out, no
// slow-query threshold, and accounting off, the request passes through
// untouched.
func (s *Server) withTrace(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, trc := s.tracer.Start(r.Context(), w.Header().Get("X-Request-ID"),
			route, traceRequested(r))
		if trc == nil && s.tracer.SlowThreshold() <= 0 && s.ledger == nil {
			next.ServeHTTP(w, r)
			return
		}
		if trc != nil {
			r = r.WithContext(ctx)
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		elapsed := time.Since(start)
		var tj *trace.TraceJSON
		if trc != nil {
			tj = s.tracer.Finish(trc)
		}
		status := http.StatusOK
		var bytes int64
		if sw, ok := w.(*statusWriter); ok {
			if sw.status != 0 {
				status = sw.status
			}
			bytes = sw.bytes
		}
		client := clientKey(r)
		s.tracer.NoteSlow(w.Header().Get("X-Request-ID"), route, client, status, elapsed, tj)
		if s.ledger != nil {
			ch := account.Charge{Client: client, Route: route, Status: status, Wall: elapsed, BytesOut: bytes}
			ch.AddTrace(tj)
			s.ledger.Charge(ch)
		}
		s.slo.Observe(routeClass(route), status, elapsed)
	})
}

// inlineTrace returns the active trace's snapshot when the client asked
// for one inline (?trace=1 / X-Trace: 1); nil otherwise. Taken before
// the middleware finishes the trace, so spans still open (the route
// root, serialization) are measured up to this instant.
func inlineTrace(r *http.Request) *trace.TraceJSON {
	if trc := trace.ActiveTrace(r.Context()); trc != nil && trc.Forced() {
		return trc.Snapshot()
	}
	return nil
}

// aggregateTrace folds one finished trace into the per-plan/per-stage
// histograms. The plan comes from the engine.query span's attribute;
// spans outside a plan (middleware waits, WAL appends) aggregate under
// plan "none".
func (s *Server) aggregateTrace(tj *trace.TraceJSON) {
	plan := "none"
	tj.Walk(func(sp *trace.SpanJSON) {
		if plan == "none" && sp.Name == "engine.query" {
			if p, ok := sp.Attrs["plan"].(string); ok {
				plan = p
			}
		}
	})
	tj.Walk(func(sp *trace.SpanJSON) {
		if sp == tj.Root {
			return // the root duplicates mLatency's request latency
		}
		s.mStage.Observe(float64(sp.DurationUS)/1e6, plan, sp.Name)
	})
}

// planOf returns the trace's plan: the first engine.query span's plan
// attribute, or "" for traces without one (mutations, admin routes).
func planOf(tj *trace.TraceJSON) string {
	plan := ""
	tj.Walk(func(sp *trace.SpanJSON) {
		if plan == "" && sp.Name == "engine.query" {
			if p, ok := sp.Attrs["plan"].(string); ok {
				plan = p
			}
		}
	})
	return plan
}

// ringFilter is the shared ?plan= / ?route= / ?min_ms= filter of the
// debug rings, so the bounded rings are inspectable without client-side
// grepping. Zero-valued filters match everything; a malformed min_ms
// is reported rather than ignored.
type ringFilter struct {
	plan  string
	route string
	minUS int64
}

func parseRingFilter(r *http.Request) (ringFilter, error) {
	q := r.URL.Query()
	f := ringFilter{plan: q.Get("plan"), route: q.Get("route")}
	if ms := q.Get("min_ms"); ms != "" {
		v, err := strconv.ParseFloat(ms, 64)
		if err != nil || v < 0 {
			return f, fmt.Errorf("invalid min_ms %q: want a non-negative number of milliseconds", ms)
		}
		f.minUS = int64(v * 1000)
	}
	return f, nil
}

func (f ringFilter) matches(route string, durationUS int64, tj *trace.TraceJSON) bool {
	if f.route != "" && route != f.route {
		return false
	}
	if durationUS < f.minUS {
		return false
	}
	if f.plan != "" && (tj == nil || planOf(tj) != f.plan) {
		return false
	}
	return true
}

func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	f, err := parseRingFilter(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidRequest, err)
		return
	}
	traces := []*trace.TraceJSON{}
	for _, tj := range s.tracer.Recent() {
		if f.matches(tj.Name, tj.DurationUS, tj) {
			traces = append(traces, tj)
		}
	}
	writeJSON(w, http.StatusOK, api.DebugTracesResponse{Traces: traces})
}

func (s *Server) debugSlow(w http.ResponseWriter, r *http.Request) {
	f, err := parseRingFilter(r)
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidRequest, err)
		return
	}
	entries := []*trace.SlowEntry{}
	for _, e := range s.tracer.Slow() {
		if f.matches(e.Route, e.DurationUS, e.Trace) {
			entries = append(entries, e)
		}
	}
	writeJSON(w, http.StatusOK, api.DebugSlowResponse{
		ThresholdUS: s.tracer.SlowThreshold().Microseconds(),
		Entries:     entries,
	})
}
