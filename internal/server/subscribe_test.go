package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"expfinder/internal/dataset"
)

const subDSL = `
node SA [label = "SA", experience >= 5] output
node SD [label = "SD", experience >= 2]
edge SA -> SD bound 2
`

func createSub(t *testing.T, tsURL string, body any) (id, eventsURL string) {
	t.Helper()
	resp, data := do(t, "POST", tsURL+"/api/graphs/paper/subscriptions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create subscription: %d %s", resp.StatusCode, data)
	}
	var out struct {
		ID        string `json:"id"`
		Hash      string `json:"pattern_hash"`
		EventsURL string `json:"events_url"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" || out.Hash == "" || out.EventsURL == "" {
		t.Fatalf("incomplete response: %s", data)
	}
	return out.ID, out.EventsURL
}

func TestSubscriptionLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)

	id, _ := createSub(t, ts.URL, map[string]any{"dsl": subDSL})

	resp, body := do(t, "GET", ts.URL+"/api/graphs/paper/subscriptions", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), fmt.Sprintf("%q", id)) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}

	// Updates report the subscription fan-out.
	resp, body = do(t, "POST", ts.URL+"/api/graphs/paper/updates",
		`{"ops": [{"op": "insert", "from": 0, "to": 1}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("updates: %d %s", resp.StatusCode, body)
	}
	var upd struct {
		Notified int `json:"notified"`
	}
	if err := json.Unmarshal(body, &upd); err != nil {
		t.Fatal(err)
	}

	resp, body = do(t, "GET", ts.URL+"/api/subscriptions/stats", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"subscriptions":1`) {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}

	resp, _ = do(t, "DELETE", ts.URL+"/api/graphs/paper/subscriptions/"+id, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/api/graphs/paper/subscriptions/"+id, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}
}

func TestSubscriptionErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)

	// Unknown graph.
	resp, _ := do(t, "POST", ts.URL+"/api/graphs/nope/subscriptions",
		map[string]any{"dsl": subDSL})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", ts.URL+"/api/graphs/nope/subscriptions", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("list unknown graph: %d", resp.StatusCode)
	}
	// Bad pattern.
	resp, _ = do(t, "POST", ts.URL+"/api/graphs/paper/subscriptions",
		map[string]any{"dsl": "node ["})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pattern: %d", resp.StatusCode)
	}
	// Subscription id pinned to its graph.
	id, _ := createSub(t, ts.URL, map[string]any{"dsl": subDSL})
	g, _ := dataset.PaperGraph()
	gj, _ := g.MarshalJSON()
	if resp, body := do(t, "POST", ts.URL+"/api/graphs/other",
		fmt.Sprintf(`{"graph": %s}`, gj)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create other: %d %s", resp.StatusCode, body)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/api/graphs/other/subscriptions/"+id, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-graph delete: %d", resp.StatusCode)
	}
}

// sseClient reads one SSE stream, delivering parsed events on a channel.
type sseFrame struct {
	event string
	data  string
}

func readSSE(t *testing.T, resp *http.Response, frames chan<- sseFrame) {
	t.Helper()
	sc := bufio.NewScanner(resp.Body)
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				frames <- cur
			}
			cur = sseFrame{}
		}
	}
	close(frames)
}

func TestSubscriptionEventStream(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)

	id, eventsURL := createSub(t, ts.URL, map[string]any{"dsl": dataset.PaperQueryDSL, "k": 2})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+eventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("stream: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	frames := make(chan sseFrame, 16)
	go readSSE(t, resp, frames)

	next := func() sseFrame {
		select {
		case fr, ok := <-frames:
			if !ok {
				t.Fatal("stream ended early")
			}
			return fr
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for SSE frame")
		}
		panic("unreachable")
	}

	// 1. The snapshot arrives first and matches the paper relation.
	fr := next()
	if fr.event != "snapshot" {
		t.Fatalf("first frame = %q, want snapshot", fr.event)
	}
	var snap struct {
		Seq   uint64             `json:"seq"`
		Pairs map[string][]int64 `json:"pairs"`
		TopK  []json.RawMessage  `json:"top_k"`
	}
	if err := json.Unmarshal([]byte(fr.data), &snap); err != nil {
		t.Fatalf("snapshot data %q: %v", fr.data, err)
	}
	total := 0
	for _, ids := range snap.Pairs {
		total += len(ids)
	}
	if total != 7 { // the paper's M(Q,G) has 7 pairs
		t.Fatalf("snapshot pairs = %v (total %d), want 7", snap.Pairs, total)
	}
	if len(snap.TopK) == 0 {
		t.Fatal("k=2 subscription snapshot missing top_k")
	}

	// 2. The Example 3 insertion streams the (SD, Fred) delta.
	g, p := dataset.PaperGraph()
	_ = g
	e1 := dataset.E1(p)
	resp2, body := do(t, "POST", ts.URL+"/api/graphs/paper/updates",
		fmt.Sprintf(`{"ops": [{"op": "insert", "from": %d, "to": %d}]}`, e1.From, e1.To))
	if resp2.StatusCode != 200 {
		t.Fatalf("updates: %d %s", resp2.StatusCode, body)
	}
	if !strings.Contains(string(body), `"notified":1`) {
		t.Fatalf("update response missing fan-out: %s", body)
	}
	fr = next()
	if fr.event != "delta" {
		t.Fatalf("second frame = %q, want delta", fr.event)
	}
	var delta struct {
		Seq   uint64             `json:"seq"`
		Added map[string][]int64 `json:"added"`
	}
	if err := json.Unmarshal([]byte(fr.data), &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Seq <= snap.Seq || len(delta.Added["SD"]) != 1 {
		t.Fatalf("delta = %s", fr.data)
	}

	// 3. Deleting the subscription ends the stream with a closed frame.
	if resp3, _ := do(t, "DELETE", ts.URL+"/api/graphs/paper/subscriptions/"+id, nil); resp3.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp3.StatusCode)
	}
	fr = next()
	if fr.event != "closed" || !strings.Contains(fr.data, "closed") {
		t.Fatalf("terminal frame = %+v", fr)
	}
}

func TestSubscriptionStreamGraphRemoved(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)
	_, eventsURL := createSub(t, ts.URL, map[string]any{"dsl": subDSL})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+eventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := make(chan sseFrame, 16)
	go readSSE(t, resp, frames)
	<-frames // snapshot

	if resp2, _ := do(t, "DELETE", ts.URL+"/api/graphs/paper", nil); resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("remove graph: %d", resp2.StatusCode)
	}
	select {
	case fr := <-frames:
		if fr.event != "closed" || !strings.Contains(fr.data, "graph-removed") {
			t.Fatalf("terminal frame = %+v", fr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after graph removal")
	}
}

// TestSubscriptionStreamsNodeMutations pins the bounded-staleness fix:
// node-level mutation endpoints flush the lazy invalidation, so an SSE
// subscriber sees the delta immediately instead of at the next edge
// batch.
func TestSubscriptionStreamsNodeMutations(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)
	_, eventsURL := createSub(t, ts.URL, map[string]any{"dsl": subDSL})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+eventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := make(chan sseFrame, 16)
	go readSSE(t, resp, frames)
	<-frames // snapshot: SA matches include Bob (node 0)

	// Removing Bob must stream a delta without any edge update arriving.
	if resp2, body := do(t, "DELETE", ts.URL+"/api/graphs/paper/nodes/0", nil); resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("remove node: %d %s", resp2.StatusCode, body)
	}
	select {
	case fr := <-frames:
		if fr.event != "delta" || !strings.Contains(fr.data, `"removed"`) {
			t.Fatalf("frame after node removal = %+v", fr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node removal did not stream a delta")
	}

	// Attribute churn that disqualifies Walt (node 1) also streams.
	if resp3, body := do(t, "POST", ts.URL+"/api/graphs/paper/nodes/1/attrs",
		`{"experience": {"kind": "int", "i": 0}}`); resp3.StatusCode != http.StatusNoContent {
		t.Fatalf("set attrs: %d %s", resp3.StatusCode, body)
	}
	select {
	case fr := <-frames:
		if fr.event != "delta" {
			t.Fatalf("frame after attr change = %+v", fr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("attribute change did not stream a delta")
	}
}
