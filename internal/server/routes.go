package server

// The declarative route table. Each entry names one operation once; the
// table is mounted twice — under /api/v1 and under the deprecated
// legacy /api prefix — through the same middleware chain, so the two
// surfaces cannot diverge. The openapi drift test walks this table
// against docs/openapi.yaml.

import "net/http"

// route is one API operation.
type route struct {
	method string
	// pattern is the ServeMux path suffix mounted under each API prefix,
	// using Go 1.22 {wildcard} segments (same syntax OpenAPI uses).
	pattern string
	// name labels the route in metrics, logs, and the OpenAPI spec
	// (operationId).
	name string
	// admit subjects the route to admission control and the request
	// timeout. Streams opt out: an SSE connection is long-lived by
	// design and must not pin an execution slot or inherit a deadline.
	admit bool
	h     http.HandlerFunc
}

// routes returns the full API route table.
func (s *Server) routes() []route {
	return []route{
		{"GET", "/graphs", "list_graphs", true, s.listGraphs},
		{"POST", "/graphs/{name}", "create_graph", true, s.createGraph},
		{"GET", "/graphs/{name}", "get_graph", true, s.getGraph},
		{"DELETE", "/graphs/{name}", "delete_graph", true, s.deleteGraph},
		{"GET", "/graphs/{name}/stats", "graph_stats", true, s.graphStats},
		{"GET", "/graphs/{name}/dot", "graph_dot", true, s.graphDOT},
		{"POST", "/graphs/{name}/query", "query", true, s.query},
		{"POST", "/query/batch", "query_batch", true, s.queryBatch},
		{"POST", "/graphs/{name}/updates", "apply_updates", true, s.applyUpdates},
		{"POST", "/graphs/{name}/nodes", "add_node", true, s.addNode},
		{"DELETE", "/graphs/{name}/nodes/{id}", "remove_node", true, s.removeNode},
		{"POST", "/graphs/{name}/nodes/{id}/attrs", "set_node_attrs", true, s.setNodeAttrs},
		{"POST", "/graphs/{name}/compress", "compress_graph", true, s.compressGraph},
		{"DELETE", "/graphs/{name}/compress", "drop_compression", true, s.dropCompression},
		{"POST", "/graphs/{name}/index", "build_index", true, s.buildIndex},
		{"GET", "/graphs/{name}/index", "index_stats", true, s.indexStats},
		{"DELETE", "/graphs/{name}/index", "drop_index", true, s.dropIndex},
		{"POST", "/graphs/{name}/partitions", "build_partitions", true, s.buildPartitions},
		{"GET", "/graphs/{name}/partitions", "partition_stats", true, s.partitionStats},
		{"DELETE", "/graphs/{name}/partitions", "drop_partitions", true, s.dropPartitions},
		{"POST", "/graphs/{name}/register", "register_query", true, s.registerQuery},
		{"POST", "/graphs/{name}/subscriptions", "create_subscription", true, s.createSubscription},
		{"GET", "/graphs/{name}/subscriptions", "list_subscriptions", true, s.listSubscriptions},
		{"DELETE", "/graphs/{name}/subscriptions/{id}", "delete_subscription", true, s.deleteSubscription},
		{"GET", "/graphs/{name}/subscriptions/{id}/events", "stream_events", false, s.streamEvents},
		{"GET", "/subscriptions/stats", "subscription_stats", true, s.subscriptionStats},
		{"GET", "/cache/stats", "cache_stats", true, s.cacheStats},
		{"GET", "/stats/queries", "query_stats", true, s.statsQueries},
		{"GET", "/stats/clients", "client_stats", true, s.statsClients},
		{"GET", "/slo", "slo_report", true, s.sloReport},
		{"GET", "/admin/persistence", "persistence_stats", true, s.persistenceStats},
		{"POST", "/admin/persistence/checkpoint", "force_checkpoint", true, s.forceCheckpoint},
		// Promote must work while a degraded follower sheds load — that is
		// exactly when failover happens — so it skips admission.
		{"POST", "/admin/promote", "promote", false, s.promote},
		// Debug surfaces skip admission: inspecting recent and slow
		// traces must keep working while the server sheds load.
		{"GET", "/debug/traces", "debug_traces", false, s.debugTraces},
		{"GET", "/debug/slow", "debug_slow", false, s.debugSlow},
		{"GET", "/debug/replication", "debug_replication", false, s.debugReplication},
	}
}

// mount registers every route under prefix with the per-route slice of
// the middleware chain: surface marker -> metrics -> trace -> auth ->
// rate limit -> admission -> handler. Tracing sits inside metrics (the
// request id is already assigned) and outside auth, so a traced request
// captures its auth, rate-limit, and admission time too.
func (s *Server) mount(mux *http.ServeMux, prefix string, rts []route) {
	for _, rt := range rts {
		var h http.Handler = rt.h
		if rt.admit {
			h = s.withAdmission(h)
		}
		h = s.withRateLimit(h)
		h = s.withAuth(h)
		h = s.withTrace(rt.name, h)
		h = s.withMetrics(rt.name, h)
		h = s.withSurface(prefix, h)
		mux.Handle(rt.method+" "+prefix+rt.pattern, h)
	}
}
