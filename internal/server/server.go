// Package server exposes ExpFinder over HTTP/JSON — the library's
// replacement for the demo's desktop GUI. Every GUI capability maps onto
// an endpoint: managing data graphs (Graph Editor), constructing and
// running pattern queries (Pattern Builder), browsing result graphs and
// top-K experts (match views, via DOT export), applying updates (dynamic
// graphs), and compressing graphs (Graph Compressor). On top of the GUI
// surface, continuous queries are exposed as subscription resources
// whose match deltas stream over Server-Sent Events (see subscribe.go).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"expfinder/internal/compress"
	"expfinder/internal/distindex"
	"expfinder/internal/engine"
	"expfinder/internal/generator"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/match"
	"expfinder/internal/pattern"
	"expfinder/internal/rank"
	"expfinder/internal/strongsim"
	"expfinder/internal/viz"
	"expfinder/internal/wal"
)

// Server wires an engine into an http.Handler.
type Server struct {
	eng *engine.Engine
	mux *http.ServeMux
	// recovery is the boot-time recovery summary /healthz reports; set
	// once via SetRecoverySummary before serving, nil without one.
	recovery *engine.RecoverySummary
}

// New returns a server over the given engine.
func New(eng *engine.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/graphs", s.listGraphs)
	s.mux.HandleFunc("POST /api/graphs/{name}", s.createGraph)
	s.mux.HandleFunc("GET /api/graphs/{name}", s.getGraph)
	s.mux.HandleFunc("DELETE /api/graphs/{name}", s.deleteGraph)
	s.mux.HandleFunc("GET /api/graphs/{name}/stats", s.graphStats)
	s.mux.HandleFunc("GET /api/graphs/{name}/dot", s.graphDOT)
	s.mux.HandleFunc("POST /api/graphs/{name}/query", s.query)
	s.mux.HandleFunc("POST /api/query/batch", s.queryBatch)
	s.mux.HandleFunc("POST /api/graphs/{name}/updates", s.applyUpdates)
	s.mux.HandleFunc("POST /api/graphs/{name}/nodes", s.addNode)
	s.mux.HandleFunc("DELETE /api/graphs/{name}/nodes/{id}", s.removeNode)
	s.mux.HandleFunc("POST /api/graphs/{name}/nodes/{id}/attrs", s.setNodeAttrs)
	s.mux.HandleFunc("POST /api/graphs/{name}/compress", s.compressGraph)
	s.mux.HandleFunc("DELETE /api/graphs/{name}/compress", s.dropCompression)
	s.mux.HandleFunc("POST /api/graphs/{name}/index", s.buildIndex)
	s.mux.HandleFunc("GET /api/graphs/{name}/index", s.indexStats)
	s.mux.HandleFunc("DELETE /api/graphs/{name}/index", s.dropIndex)
	s.mux.HandleFunc("POST /api/graphs/{name}/partitions", s.buildPartitions)
	s.mux.HandleFunc("GET /api/graphs/{name}/partitions", s.partitionStats)
	s.mux.HandleFunc("DELETE /api/graphs/{name}/partitions", s.dropPartitions)
	s.mux.HandleFunc("POST /api/graphs/{name}/register", s.registerQuery)
	s.mux.HandleFunc("POST /api/graphs/{name}/subscriptions", s.createSubscription)
	s.mux.HandleFunc("GET /api/graphs/{name}/subscriptions", s.listSubscriptions)
	s.mux.HandleFunc("DELETE /api/graphs/{name}/subscriptions/{id}", s.deleteSubscription)
	s.mux.HandleFunc("GET /api/graphs/{name}/subscriptions/{id}/events", s.streamEvents)
	s.mux.HandleFunc("GET /api/subscriptions/stats", s.subscriptionStats)
	s.mux.HandleFunc("GET /api/cache/stats", s.cacheStats)
	s.mux.HandleFunc("GET /api/admin/persistence", s.persistenceStats)
	s.mux.HandleFunc("POST /api/admin/persistence/checkpoint", s.forceCheckpoint)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errBody{Error: err.Error()})
}

// statusFor maps engine errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, engine.ErrNoGraph), errors.Is(err, engine.ErrNoIndex),
		errors.Is(err, engine.ErrNoPartition):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrGraphExists), errors.Is(err, wal.ErrExists):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) listGraphs(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
	}
	var out []entry
	for _, name := range s.eng.ListGraphs() {
		var en entry
		if err := s.eng.WithGraph(name, func(g *graph.Graph) error {
			en = entry{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()}
			return nil
		}); err != nil {
			continue
		}
		out = append(out, en)
	}
	writeJSON(w, http.StatusOK, out)
}

// createGraphRequest uploads a graph directly or asks for a generated one.
type createGraphRequest struct {
	// Graph, when set, is a full graph in the standard JSON form.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Generator, when set, generates a synthetic graph instead.
	Generator *struct {
		Kind      string  `json:"kind"`
		Nodes     int     `json:"nodes"`
		AvgDegree float64 `json:"avg_degree"`
		Seed      int64   `json:"seed"`
	} `json:"generator,omitempty"`
}

func (s *Server) createGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req createGraphRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var g *graph.Graph
	switch {
	case req.Generator != nil:
		g, err = generator.Generate(generator.Kind(req.Generator.Kind), generator.Config{
			Nodes: req.Generator.Nodes, AvgDegree: req.Generator.AvgDegree, Seed: req.Generator.Seed,
		})
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case req.Graph != nil:
		g = graph.New(0)
		if err := g.UnmarshalJSON(req.Graph); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, errors.New("request needs either graph or generator"))
		return
	}
	if err := s.eng.AddGraph(name, g); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": name, "nodes": g.NumNodes(), "edges": g.NumEdges(),
	})
}

// Read endpoints serialize into a buffer inside the graph's read scope
// and write to the client after releasing it: streaming to a slow client
// under the lock would let that client stall the graph's writers (and,
// via RWMutex writer preference, every other reader).

func (s *Server) getGraph(w http.ResponseWriter, r *http.Request) {
	var buf jsonBuilder
	err := s.eng.WithGraph(r.PathValue("name"), func(g *graph.Graph) error {
		return g.WriteJSON(&buf)
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.buf)
}

func (s *Server) deleteGraph(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.RemoveGraph(r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) graphStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body map[string]any
	err := s.eng.WithGraph(name, func(g *graph.Graph) error {
		st := g.ComputeStats()
		body = map[string]any{
			"nodes": st.Nodes, "edges": st.Edges,
			"max_out_degree": st.MaxOutDeg, "max_in_degree": st.MaxInDeg,
			"labels": st.Labels, "version": g.Version(),
		}
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if ixStats, err := s.eng.IndexStats(name); err == nil {
		body["index"] = ixStats
	}
	if ptStats, err := s.eng.PartitionStats(name); err == nil {
		body["partitions"] = ptStats
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) graphDOT(w http.ResponseWriter, r *http.Request) {
	var buf jsonBuilder
	err := s.eng.WithGraph(r.PathValue("name"), func(g *graph.Graph) error {
		return viz.WriteGraph(&buf, g, viz.Options{MaxNodes: 500, DrillDown: r.URL.Query().Get("drilldown") == "1"})
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	_, _ = w.Write(buf.buf)
}

// queryRequest carries a pattern in JSON form or DSL text, plus K and an
// optional matching semantics ("bounded" default, or "dual": additionally
// enforce ancestor obligations).
type queryRequest struct {
	Pattern   json.RawMessage `json:"pattern,omitempty"`
	DSL       string          `json:"dsl,omitempty"`
	K         int             `json:"k"`
	Semantics string          `json:"semantics,omitempty"`
	// Metric selects the ranking: avg-distance (default), closeness,
	// degree, or pagerank.
	Metric string `json:"metric,omitempty"`
}

// metricByName resolves a ranking metric; "" means the paper's default.
func metricByName(name string) (rank.Metric, error) {
	switch name {
	case "", rank.AvgDistance{}.Name():
		return rank.AvgDistance{}, nil
	case rank.Closeness{}.Name():
		return rank.Closeness{}, nil
	case rank.Degree{}.Name():
		return rank.Degree{}, nil
	case (rank.PageRank{}).Name():
		return rank.PageRank{}, nil
	default:
		return nil, fmt.Errorf("unknown metric %q", name)
	}
}

// queryResponse is the full query answer.
type queryResponse struct {
	Plan      string             `json:"plan"`
	Source    string             `json:"source"`
	ElapsedUS int64              `json:"elapsed_us"`
	Matches   map[string][]int64 `json:"matches"`
	TopK      []topEntry         `json:"top_k"`
	ResultDOT string             `json:"result_dot,omitempty"`
}

type topEntry struct {
	Node      int64   `json:"node"`
	Name      string  `json:"name,omitempty"`
	Rank      float64 `json:"rank"`
	Connected int     `json:"connected"`
}

func parsePattern(req queryRequest) (*pattern.Pattern, error) {
	switch {
	case req.DSL != "":
		return pattern.Parse(req.DSL)
	case req.Pattern != nil:
		q := pattern.New()
		if err := q.UnmarshalJSON(req.Pattern); err != nil {
			return nil, err
		}
		return q, nil
	default:
		return nil, errors.New("request needs pattern or dsl")
	}
}

func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q, err := parsePattern(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	metric, err := metricByName(req.Metric)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var res *engine.Result
	switch req.Semantics {
	case "", "bounded":
		res, err = s.eng.QueryCtx(r.Context(), name, q, req.K)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		if req.Metric != "" && req.Metric != (rank.AvgDistance{}).Name() {
			res.TopK = rank.TopKByMetricWithResultGraph(res.ResultGraph, q, res.Relation, req.K, metric)
		}
	case "dual":
		// Dual simulation bypasses the engine pipeline (no cache or
		// compression routing is defined for it); evaluated directly
		// inside the graph's read scope — through the distance index
		// when a fresh *complete* one is registered (a partial index
		// would pay a per-pair BFS fallback for every label-undecided
		// witness check, easily dwarfing the single traversal it
		// replaces). The index pointer is fetched before entering the
		// read scope (no nested engine locks); freshness is re-checked
		// inside it.
		if err := q.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		ix, ixErr := s.eng.Index(name)
		err = s.eng.WithGraph(name, func(g *graph.Graph) error {
			start := time.Now()
			var rel *match.Relation
			source := engine.SourceDirect
			if ixErr == nil && ix.Complete() && ix.Fresh(g) {
				rel = strongsim.DualIndexed(g, q, ix)
				source = engine.SourceIndexed
			} else {
				rel = strongsim.Dual(g, q)
			}
			rg := match.BuildResultGraph(g, q, rel)
			res = &engine.Result{
				Relation:    rel,
				ResultGraph: rg,
				TopK:        rank.TopKByMetricWithResultGraph(rg, q, rel, req.K, metric),
				Plan:        "dual-simulation",
				Source:      source,
				Elapsed:     time.Since(start),
			}
			return nil
		})
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown semantics %q", req.Semantics))
		return
	}
	writeJSON(w, http.StatusOK, s.render(name, q, res, r.URL.Query().Get("dot") == "1"))
}

// render builds the wire response inside the graph's read scope so
// display-name lookups and DOT export never race engine mutations. If
// the graph was removed after the query answered (against its
// pre-removal snapshot), the result is still rendered — just without
// graph-resident display names or DOT.
func (s *Server) render(name string, q *pattern.Pattern, res *engine.Result, withDot bool) queryResponse {
	var resp queryResponse
	if err := s.eng.WithGraph(name, func(g *graph.Graph) error {
		resp = responseFor(g, q, res, withDot)
		return nil
	}); err != nil {
		resp = responseFor(nil, q, res, false)
	}
	return resp
}

// responseFor renders an engine result into the wire form shared by the
// single-query and batch endpoints. g may be nil (graph removed after
// the query answered): matches and ranks still render, display names
// and DOT are skipped.
func responseFor(g *graph.Graph, q *pattern.Pattern, res *engine.Result, withDot bool) queryResponse {
	resp := queryResponse{
		Plan:      string(res.Plan),
		Source:    string(res.Source),
		ElapsedUS: res.Elapsed.Microseconds(),
		Matches:   map[string][]int64{},
	}
	for i := 0; i < q.NumNodes(); i++ {
		idx := pattern.NodeIdx(i)
		ids := res.Relation.MatchesOf(idx)
		out := make([]int64, len(ids))
		for j, id := range ids {
			out[j] = int64(id)
		}
		resp.Matches[q.Node(idx).Name] = out
	}
	for _, t := range res.TopK {
		entry := topEntry{Node: int64(t.Node), Rank: t.Rank, Connected: t.Connected}
		if g != nil {
			if v, ok := g.Attr(t.Node, "name"); ok {
				entry.Name = v.Str()
			}
		}
		resp.TopK = append(resp.TopK, entry)
	}
	if withDot && g != nil {
		var dot jsonBuilder
		if err := viz.WriteTopK(&dot, g, res.ResultGraph, res.TopK, viz.Options{}); err == nil {
			resp.ResultDOT = dot.String()
		}
	}
	return resp
}

// batchQuery is one query of a batch request: a target graph plus the
// single-endpoint pattern/DSL, K, and metric fields (bounded semantics
// only — dual simulation has no engine pipeline to dispatch through).
type batchQuery struct {
	Graph   string          `json:"graph"`
	Pattern json.RawMessage `json:"pattern,omitempty"`
	DSL     string          `json:"dsl,omitempty"`
	K       int             `json:"k"`
	Metric  string          `json:"metric,omitempty"`
}

// batchEntry is one outcome: either Error or the embedded response.
type batchEntry struct {
	queryResponse
	Error string `json:"error,omitempty"`
}

// queryBatch evaluates many queries in one request through the engine's
// bounded parallel executor. Outcomes come back in request order, and a
// failed query never fails the batch.
func (s *Server) queryBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Queries []batchQuery `json:"queries"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("request needs a non-empty queries list"))
		return
	}
	entries := make([]batchEntry, len(req.Queries))
	patterns := make([]*pattern.Pattern, len(req.Queries))
	metrics := make([]rank.Metric, len(req.Queries))
	var reqs []engine.QueryRequest
	var at []int // reqs index -> entries index
	for i, bq := range req.Queries {
		q, err := parsePattern(queryRequest{Pattern: bq.Pattern, DSL: bq.DSL})
		if err == nil {
			metrics[i], err = metricByName(bq.Metric)
		}
		if err != nil {
			entries[i].Error = err.Error()
			continue
		}
		patterns[i] = q
		reqs = append(reqs, engine.QueryRequest{Graph: bq.Graph, Pattern: q, K: bq.K})
		at = append(at, i)
	}
	outcomes := s.eng.QueryBatch(r.Context(), reqs)
	for j, oc := range outcomes {
		i := at[j]
		if oc.Err != nil {
			entries[i].Error = oc.Err.Error()
			continue
		}
		bq := req.Queries[i]
		if bq.Metric != "" && bq.Metric != (rank.AvgDistance{}).Name() {
			oc.Result.TopK = rank.TopKByMetricWithResultGraph(
				oc.Result.ResultGraph, patterns[i], oc.Result.Relation, bq.K, metrics[i])
		}
		entries[i].queryResponse = s.render(bq.Graph, patterns[i], oc.Result, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": entries})
}

// jsonBuilder is a tiny strings.Builder alias implementing io.Writer.
type jsonBuilder struct{ buf []byte }

func (b *jsonBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *jsonBuilder) String() string { return string(b.buf) }

// updateRequest applies a batch of edge updates.
type updateRequest struct {
	Ops []struct {
		Op   string `json:"op"` // "insert" | "delete"
		From int64  `json:"from"`
		To   int64  `json:"to"`
	} `json:"ops"`
}

func (s *Server) applyUpdates(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req updateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ops := make([]incremental.Update, 0, len(req.Ops))
	for _, o := range req.Ops {
		switch o.Op {
		case "insert":
			ops = append(ops, incremental.Insert(graph.NodeID(o.From), graph.NodeID(o.To)))
		case "delete":
			ops = append(ops, incremental.Delete(graph.NodeID(o.From), graph.NodeID(o.To)))
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown op %q", o.Op))
			return
		}
	}
	deltas, notified, err := s.eng.PushUpdates(name, ops)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	type deltaBody struct {
		PatternHash string `json:"pattern_hash"`
		Added       int    `json:"added"`
		Removed     int    `json:"removed"`
	}
	out := make([]deltaBody, 0, len(deltas))
	for _, d := range deltas {
		out = append(out, deltaBody{PatternHash: d.PatternHash, Added: len(d.Added), Removed: len(d.Removed)})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": len(ops), "deltas": out,
		// How many live subscriptions were handed a match delta.
		"notified": notified,
	})
}

// addNodeRequest creates one node.
type addNodeRequest struct {
	Label string                 `json:"label"`
	Attrs map[string]graph.Value `json:"attrs,omitempty"`
}

func (s *Server) addNode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req addNodeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	attrs := graph.Attrs(req.Attrs)
	id, err := s.eng.AddNode(name, req.Label, attrs)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": int64(id)})
}

func parseNodeID(r *http.Request) (graph.NodeID, error) {
	raw := r.PathValue("id")
	id, err := json.Number(raw).Int64()
	if err != nil || id < 0 {
		return graph.Invalid, fmt.Errorf("bad node id %q", raw)
	}
	return graph.NodeID(id), nil
}

func (s *Server) removeNode(w http.ResponseWriter, r *http.Request) {
	id, err := parseNodeID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	if err := s.eng.RemoveNode(name, id); err != nil {
		status := statusFor(err)
		if errors.Is(err, graph.ErrNoNode) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	// Node removals invalidate standing queries lazily; flush here so
	// subscribers streaming events see the delta now rather than at the
	// next edge-update batch.
	_, _ = s.eng.FlushSubscriptions(name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) setNodeAttrs(w http.ResponseWriter, r *http.Request) {
	id, err := parseNodeID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var attrs map[string]graph.Value
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&attrs); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	for key, v := range attrs {
		if err := s.eng.SetNodeAttr(name, id, key, v); err != nil {
			status := statusFor(err)
			if errors.Is(err, graph.ErrNoNode) {
				status = http.StatusNotFound
			}
			writeErr(w, status, err)
			return
		}
	}
	// One flush after the whole attribute batch (see removeNode).
	_, _ = s.eng.FlushSubscriptions(name)
	w.WriteHeader(http.StatusNoContent)
}

// compressRequest selects a compression scheme and attribute view.
type compressRequest struct {
	Scheme string   `json:"scheme"` // "bisimulation" (default) | "simulation-equivalence"
	View   []string `json:"view,omitempty"`
	// FullView distinguishes all attributes (ignores View).
	FullView bool `json:"full_view,omitempty"`
}

func (s *Server) compressGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req compressRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	scheme := compress.Bisimulation
	if req.Scheme == compress.SimulationEquivalence.String() {
		scheme = compress.SimulationEquivalence
	} else if req.Scheme != "" && req.Scheme != compress.Bisimulation.String() {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown scheme %q", req.Scheme))
		return
	}
	var view compress.View
	if !req.FullView {
		view = compress.View(req.View)
		if req.View == nil {
			view = compress.View{}
		}
	}
	c, err := s.eng.CompressGraph(name, scheme, view)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scheme": scheme.String(),
		"nodes":  c.Graph().NumNodes(),
		"edges":  c.Graph().NumEdges(),
		"ratio":  c.Ratio(),
	})
}

func (s *Server) dropCompression(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.DropCompression(r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// indexRequest configures a distance-index build.
type indexRequest struct {
	// Landmarks caps the landmark count; 0 (or absent) indexes every
	// node, making all bounded-reachability answers label-only.
	Landmarks int `json:"landmarks"`
}

func (s *Server) buildIndex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req indexRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.eng.BuildIndex(name, distindex.Options{Landmarks: req.Landmarks})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) indexStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.eng.IndexStats(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) dropIndex(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.DropIndex(r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) registerQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q, err := parsePattern(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.eng.RegisterQuery(name, q); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"registered": q.Hash()})
}

func (s *Server) cacheStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.CacheStats()
	writeJSON(w, http.StatusOK, map[string]int{
		"hits": st.Hits, "misses": st.Misses, "evictions": st.Evictions, "entries": st.Entries,
	})
}
