// Package server exposes ExpFinder over HTTP/JSON — the library's
// replacement for the demo's desktop GUI, hardened for production
// traffic. Every GUI capability maps onto an endpoint: managing data
// graphs (Graph Editor), constructing and running pattern queries
// (Pattern Builder), browsing result graphs and top-K experts (match
// views, via DOT export), applying updates (dynamic graphs), and
// compressing graphs (Graph Compressor). Continuous queries are exposed
// as subscription resources whose match deltas stream over Server-Sent
// Events (see subscribe.go).
//
// The API is versioned: /api/v1 is the current surface, typed by
// internal/api; the original /api/* paths remain as deprecated aliases
// of the same handlers (emitting a Deprecation header) so pre-v1
// clients keep working byte-for-byte. Every request flows through a
// middleware chain — request id, structured logging, per-route metrics,
// optional bearer auth, per-client rate limiting, and admission control
// that sheds load with 503 + Retry-After before the engine's worker
// pool saturates (see middleware.go and routes.go). GET /metrics serves
// Prometheus-style text; /healthz and /metrics bypass auth, rate
// limiting, and admission so probes keep answering under overload.
package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"expfinder/internal/account"
	"expfinder/internal/api"
	"expfinder/internal/engine"
	"expfinder/internal/logx"
	"expfinder/internal/metrics"
	"expfinder/internal/replication"
	"expfinder/internal/stats"
	"expfinder/internal/trace"
)

// Config tunes the serving tier. The zero value (what bare New(eng)
// uses) keeps every guardrail off except admission control, which
// defaults to the engine's own execution parallelism — the point past
// which accepting more work can only grow queues.
type Config struct {
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>"
	// on every API route (/healthz and /metrics stay open).
	AuthToken string
	// RateLimit is the per-client sustained request rate (requests per
	// second); 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth; 0 means one second of
	// RateLimit (minimum 1).
	RateBurst int
	// MaxInflight bounds concurrently executing requests. 0 means
	// GOMAXPROCS (matching the engine's default worker pool); negative
	// disables admission control entirely.
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are shed with 503 + Retry-After. 0 means 4x MaxInflight.
	MaxQueue int
	// RequestTimeout is propagated as a context deadline into the engine
	// on admission-controlled routes; 0 means no deadline.
	RequestTimeout time.Duration
	// Logger, when set, receives one structured event per request (the
	// access log), plus slow_query events; text vs. JSON rendering is
	// the logger's own -log-format concern.
	Logger *logx.Logger
	// TraceSample is the fraction of requests traced through the query
	// engine (0 = none, 1 = all). Requests asking explicitly with
	// ?trace=1 or X-Trace: 1 are always traced regardless of the rate.
	TraceSample float64
	// SlowQuery, when positive, logs every request slower than this
	// threshold to the slow-query log (GET /api/v1/debug/slow) and, when
	// configured, the structured Logger.
	SlowQuery time.Duration
	// Debug mounts net/http/pprof under /debug/pprof/ — outside
	// admission control (profiling an overloaded server is the point)
	// but behind bearer auth when AuthToken is set.
	Debug bool
	// DisableAccounting turns off the per-client resource ledger, the
	// SLO tracker, and their endpoints/metrics. Accounting is on by
	// default: it observes finished requests only, so results are
	// byte-identical either way (enforced by benchrunner -exp a11).
	DisableAccounting bool
	// AccountClients bounds how many distinct clients the ledger tracks
	// individually (the rest fold into an "other" bucket); 0 means 32.
	AccountClients int
	// SLOTargets overrides the per-route-class p99 latency targets
	// (keys: query, mutation, read, stream, admin, debug). Classes not
	// listed keep the defaults in defaultSLOTargets.
	SLOTargets map[string]time.Duration
	// Health tunes the component-health thresholds /healthz rolls up;
	// zero fields take the defaults documented on HealthThresholds.
	Health HealthThresholds
	// ShedHeaviest lets admission control prefer the heaviest client:
	// once the admission queue is at least half full, requests from a
	// client consuming the majority of the last minute's wall time are
	// shed immediately instead of queueing. Off by default.
	ShedHeaviest bool
}

// Server wires an engine into an http.Handler.
type Server struct {
	eng     *engine.Engine
	cfg     Config
	handler http.Handler
	// recovery is the boot-time recovery summary /healthz reports; set
	// once via SetRecoverySummary before serving, nil without one.
	recovery *engine.RecoverySummary
	// repl is the node's replication role (leader or follower); set once
	// via SetReplication before serving, nil on standalone nodes.
	repl replication.Source

	registry *metrics.Registry
	limiter  *rateLimiter
	admit    *admission
	tracer   *trace.Tracer
	recorder *stats.Recorder
	// ledger and slo are nil when Config.DisableAccounting is set; both
	// are nil-safe, so charge sites never branch. health always exists.
	ledger *account.Ledger
	slo    *account.SLO
	health *account.Health

	mReqs        *metrics.Counter
	mLatency     *metrics.Histogram
	mShed        *metrics.Counter
	mShedHeavy   *metrics.Counter
	mRateLimited *metrics.Counter
	mStage       *metrics.Histogram
}

// New returns a server over the given engine. With no Config the
// serving tier runs open (no auth, no rate limit) with default
// admission control — the pre-v1 behavior plus overload protection.
func New(eng *engine.Engine, cfg ...Config) *Server {
	var c Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	s := &Server{eng: eng, cfg: c, registry: metrics.NewRegistry()}

	// The tracer always exists: forced traces (?trace=1) work with a zero
	// sample rate, and the slow-query log is threshold-gated on its own.
	s.tracer = trace.New(trace.Options{
		Sample:        c.TraceSample,
		SlowThreshold: c.SlowQuery,
		Logger:        c.Logger,
	})

	if c.RateLimit > 0 {
		s.limiter = newRateLimiter(c.RateLimit, c.RateBurst)
	}
	if c.MaxInflight >= 0 {
		inflight := c.MaxInflight
		if inflight == 0 {
			inflight = runtime.GOMAXPROCS(0)
		}
		s.admit = newAdmission(inflight, c.MaxQueue)
	}

	s.mReqs = s.registry.NewCounter("expfinder_http_requests_total",
		"HTTP requests served, by route, method, and status code.",
		"route", "method", "code")
	s.mLatency = s.registry.NewHistogram("expfinder_http_request_duration_seconds",
		"HTTP request latency in seconds, by route.", nil, "route")
	s.mShed = s.registry.NewCounter("expfinder_admission_shed_total",
		"Requests shed by admission control with 503.")
	s.mShedHeavy = s.registry.NewCounter("expfinder_admission_shed_heaviest_total",
		"Requests shed specifically because their client was the window's heaviest.")
	s.mRateLimited = s.registry.NewCounter("expfinder_rate_limited_total",
		"Requests rejected by the per-client rate limiter with 429.")
	s.registry.NewGaugeFunc("expfinder_admission_queue_depth",
		"Requests waiting for an execution slot.", func() float64 {
			if s.admit == nil {
				return 0
			}
			return float64(s.admit.queued.Load())
		})
	s.registry.NewGaugeFunc("expfinder_admission_inflight",
		"Requests holding an execution slot.", func() float64 {
			if s.admit == nil {
				return 0
			}
			return float64(len(s.admit.slots))
		})
	s.registry.NewGaugeFunc("expfinder_graphs",
		"Graphs managed by the engine.", func() float64 {
			return float64(len(s.eng.ListGraphs()))
		})
	s.registry.NewGaugeFunc("expfinder_subscriptions",
		"Live continuous-query subscriptions.", func() float64 {
			return float64(s.eng.SubscriptionStats().Subscriptions)
		})
	s.registry.NewGaugeFunc("expfinder_cache_bytes",
		"Accounted bytes resident in the result cache.", func() float64 {
			return float64(s.eng.CacheStats().Bytes)
		})
	s.registry.NewGaugeFunc("expfinder_cache_entries",
		"Entries resident in the result cache.", func() float64 {
			return float64(s.eng.CacheStats().Entries)
		})
	s.registry.NewGaugeFunc("expfinder_cache_hits",
		"Result-cache hits since boot.", func() float64 {
			return float64(s.eng.CacheStats().Hits)
		})
	s.registry.NewGaugeFunc("expfinder_cache_misses",
		"Result-cache misses since boot.", func() float64 {
			return float64(s.eng.CacheStats().Misses)
		})
	s.registry.NewGaugeFunc("expfinder_engine_inflight",
		"Queries holding an engine execution token.", func() float64 {
			return float64(s.eng.InflightQueries())
		})
	s.registry.NewGaugeFunc("expfinder_replication_lag_records",
		"Replication lag in records: a follower's distance behind the "+
			"leader's last heartbeat, or a leader's worst follower gap. "+
			"0 when standalone.", func() float64 {
			if s.repl == nil {
				return 0
			}
			return float64(s.repl.Lag())
		})
	s.registry.NewGaugeFunc("expfinder_engine_queue_depth",
		"Queries parked waiting for an engine execution token.", func() float64 {
			return float64(s.eng.QueuedQueries())
		})
	metrics.RegisterRuntime(s.registry)

	// Finished traces aggregate into per-plan/per-stage latency
	// histograms, so even sampled tracing feeds dashboards continuously.
	s.mStage = s.registry.NewHistogram("expfinder_query_stage_duration_seconds",
		"Traced query-stage latency in seconds, by plan and stage.", nil,
		"plan", "stage")
	s.tracer.OnFinish(s.aggregateTrace)

	// The same finished traces feed the plan-outcome recorder — the
	// rolling per-(graph, plan, shape) summaries behind /stats/queries
	// and the expfinder_plan_outcome_* series.
	s.recorder = stats.NewRecorder(0)
	s.tracer.OnFinish(s.recorder.Observe)
	s.registerStatsMetrics()

	// Per-client accounting + SLO tracking. The charge site is the
	// withTrace middleware — every request is charged regardless of
	// sampling; trace-derived cost detail rides along when present.
	if !c.DisableAccounting {
		s.ledger = account.NewLedger(c.AccountClients)
		s.slo = account.NewSLO(sloObjectives(c.SLOTargets))
	}
	s.health = account.NewHealth()
	s.registerHealthComponents()
	s.registerAccountMetrics()

	mux := http.NewServeMux()
	rts := s.routes()
	s.mount(mux, api.Prefix, rts)
	s.mount(mux, api.LegacyPrefix, rts)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.Handle("GET /metrics", s.registry.Handler())
	if c.Debug {
		// pprof sits outside rate limiting and admission — profiling an
		// overloaded server is exactly the point — but inside auth when a
		// token is configured.
		pp := http.NewServeMux()
		pp.HandleFunc("/debug/pprof/", pprof.Index)
		pp.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pp.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pp.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pp.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/pprof/", s.withAuth(pp))
	}
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusNotFound, api.CodeNotFound,
			"no such route: "+r.Method+" "+r.URL.Path, nil)
	}))
	s.handler = s.withObservability(mux)
	return s
}

// Metrics exposes the server's metrics registry (e.g. for tests or for
// embedding additional gauges before serving).
func (s *Server) Metrics() *metrics.Registry { return s.registry }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// jsonBuilder is a tiny strings.Builder alias implementing io.Writer.
type jsonBuilder struct{ buf []byte }

func (b *jsonBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *jsonBuilder) String() string { return string(b.buf) }
