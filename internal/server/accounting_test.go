package server

// End-to-end tests for the accounting surface: one client identity
// shared by the rate limiter, the slow-query log, and the ledger; the
// ledger reconciling with the requests actually served; the
// /stats/clients and /slo endpoints; heavy-client shedding; the debug
// ring filters; and /healthz degrading (not failing) when replication
// breaks under injected network faults.

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"expfinder/internal/account"
	"expfinder/internal/api"
	"expfinder/internal/dataset"
	"expfinder/internal/engine"
	"expfinder/internal/replication"
	"expfinder/internal/testutil"
	"expfinder/internal/wal"
)

// get issues a GET with the given X-Client-ID and returns the response
// with its body drained.
func getAs(t *testing.T, url, client string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body []byte
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, body
}

// TestClientIdentityUnified drives one client through the stack and
// asserts the rate limiter, the slow-query log, and the accounting
// ledger all saw the same identity: the X-Client-ID header.
func TestClientIdentityUnified(t *testing.T) {
	ts, s := newConfiguredServer(t, Config{
		RateLimit: 1, RateBurst: 2, SlowQuery: time.Nanosecond,
	})

	// Two requests drain alice's burst; the third is rate limited.
	resp, _ := getAs(t, ts.URL+"/api/v1/graphs", "alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-RateLimit-Remaining"); got != "1" {
		t.Errorf("first X-RateLimit-Remaining = %q, want 1", got)
	}
	resp, _ = getAs(t, ts.URL+"/api/v1/graphs", "alice")
	if got := resp.Header.Get("X-RateLimit-Remaining"); got != "0" {
		t.Errorf("second X-RateLimit-Remaining = %q, want 0", got)
	}
	resp, body := getAs(t, ts.URL+"/api/v1/graphs", "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-RateLimit-Remaining"); got != "0" {
		t.Errorf("429 X-RateLimit-Remaining = %q, want 0", got)
	}
	decodeEnvelope(t, body)
	// A different identity has its own bucket.
	if resp, _ := getAs(t, ts.URL+"/api/v1/graphs", "bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob limited by alice's bucket: %d", resp.StatusCode)
	}

	// The slow-query log (threshold 1ns: everything is slow) attributes
	// each entry to the same key, including the 429.
	var alice, bob int
	for _, e := range s.tracer.Slow() {
		switch e.Client {
		case "alice":
			alice++
		case "bob":
			bob++
		default:
			t.Errorf("slow entry with unexpected client %q", e.Client)
		}
	}
	if alice != 3 || bob != 1 {
		t.Errorf("slow log clients: alice=%d bob=%d, want 3/1", alice, bob)
	}

	// The ledger billed the same identities, with the 429 called out.
	usage := map[string]account.ClientUsage{}
	for _, cu := range s.ledger.Snapshot(0) {
		usage[cu.Client] = cu
	}
	if u := usage["alice"]; u.Requests != 3 || u.RateLimited != 1 {
		t.Errorf("alice usage = %+v, want 3 requests, 1 rate_limited", u)
	}
	if u := usage["bob"]; u.Requests != 1 || u.RateLimited != 0 {
		t.Errorf("bob usage = %+v, want 1 request", u)
	}
}

// TestStatsClientsEndpoint exercises GET /stats/clients end to end:
// the per-client rows must sum exactly to the reported totals, and the
// totals must match the number of requests actually issued.
func TestStatsClientsEndpoint(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{TraceSample: 1})
	uploadPaperGraph(t, ts)

	queryAs := func(client string) {
		t.Helper()
		payload, err := json.Marshal(map[string]any{"dsl": dataset.PaperQueryDSL, "k": 3})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", ts.URL+"/api/v1/graphs/paper/query",
			bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query as %s: %d", client, resp.StatusCode)
		}
	}

	issued := int64(1) // the upload above
	for i, client := range []string{"alice", "bob", "carol"} {
		for j := 0; j <= i; j++ {
			queryAs(client)
			issued++
			if resp, _ := getAs(t, ts.URL+"/api/v1/graphs", client); resp.StatusCode != http.StatusOK {
				t.Fatal("list failed")
			}
			issued++
		}
	}

	resp, body := do(t, "GET", ts.URL+"/api/v1/stats/clients?window=total", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats/clients: %d %s", resp.StatusCode, body)
	}
	var cs api.ClientStatsResponse
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Window != "total" {
		t.Errorf("window = %q, want total", cs.Window)
	}
	var sum account.Usage
	var rows int64
	for _, cu := range cs.Clients {
		sum.Requests += cu.Requests
		sum.WallUS += cu.WallUS
		sum.BytesOut += cu.BytesOut
		rows++
	}
	if sum.Requests != cs.Totals.Requests || sum.WallUS != cs.Totals.WallUS || sum.BytesOut != cs.Totals.BytesOut {
		t.Errorf("client rows sum %+v != totals %+v", sum, cs.Totals)
	}
	// The stats request itself is charged after its response is
	// rendered, so the body covers exactly the requests issued before it.
	if cs.Totals.Requests != issued {
		t.Errorf("totals.requests = %d, want %d", cs.Totals.Requests, issued)
	}
	if cs.Totals.WallUS <= 0 || cs.Totals.BytesOut <= 0 {
		t.Errorf("totals missing wall/bytes: %+v", cs.Totals)
	}

	// Traced queries attribute engine work: somebody computed candidates.
	if sum.Requests > 0 {
		var candidates int64
		for _, cu := range cs.Clients {
			candidates += cu.Candidates
		}
		if candidates <= 0 {
			t.Error("no candidate work attributed despite traced queries")
		}
	}

	resp, body = do(t, "GET", ts.URL+"/api/v1/stats/clients?window=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus window: %d %s", resp.StatusCode, body)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != api.CodeInvalidRequest {
		t.Errorf("bogus window code = %q", env.Error.Code)
	}
}

// TestSLOEndpoint checks GET /slo reports the route classes the
// workload touched, across all three windows.
func TestSLOEndpoint(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{})
	uploadPaperGraph(t, ts) // mutation class
	for i := 0; i < 3; i++ {
		if resp, _ := do(t, "GET", ts.URL+"/api/v1/graphs", nil); resp.StatusCode != http.StatusOK {
			t.Fatal("list failed")
		}
	}

	resp, body := do(t, "GET", ts.URL+"/api/v1/slo", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slo: %d %s", resp.StatusCode, body)
	}
	var sr api.SLOResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	classes := map[string]account.ClassReport{}
	for _, cr := range sr.Classes {
		classes[cr.Class] = cr
	}
	read, ok := classes["read"]
	if !ok {
		t.Fatalf("no read class in %s", body)
	}
	if len(read.Windows) != 3 {
		t.Fatalf("read windows = %d, want 3", len(read.Windows))
	}
	for _, wr := range read.Windows {
		if wr.Total < 3 {
			t.Errorf("window %s total = %d, want >= 3", wr.Window, wr.Total)
		}
		if wr.Availability != 1 || wr.AvailabilityBurn != 0 {
			t.Errorf("window %s: availability %v burn %v, want clean", wr.Window, wr.Availability, wr.AvailabilityBurn)
		}
	}
	if _, ok := classes["mutation"]; !ok {
		t.Errorf("no mutation class after a graph upload: %s", body)
	}
}

// TestAccountingDisabled: with -accounting=false the endpoints answer
// 404 and requests still serve.
func TestAccountingDisabled(t *testing.T) {
	ts, s := newConfiguredServer(t, Config{DisableAccounting: true})
	if s.ledger != nil || s.slo != nil {
		t.Fatal("accounting built despite DisableAccounting")
	}
	if resp, _ := do(t, "GET", ts.URL+"/api/v1/graphs", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("request failed with accounting off: %d", resp.StatusCode)
	}
	for _, path := range []string{"/api/v1/stats/clients", "/api/v1/slo"} {
		resp, body := do(t, "GET", ts.URL+path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, resp.StatusCode)
		}
		if env := decodeEnvelope(t, body); env.Error.Code != api.CodeNotFound {
			t.Errorf("%s code = %q", path, env.Error.Code)
		}
	}
}

// TestShedHeaviestClient fills the admission queue and asserts the
// dominant client is shed with the heaviest_client reason while a light
// client still queues, and that plain queue-full sheds carry the queue
// depth in their details.
func TestShedHeaviestClient(t *testing.T) {
	eng := engine.New(engine.Options{})
	s := New(eng, Config{MaxInflight: 1, MaxQueue: 1, ShedHeaviest: true})
	// The last minute of history: "heavy" owns all the wall time.
	s.ledger.Charge(account.Charge{Client: "heavy", Status: 200, Wall: time.Second})

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	})
	ts := httptest.NewServer(s.withAdmission(blocked))
	defer ts.Close()
	defer close(release)

	type result struct {
		status int
		body   []byte
	}
	fire := func(client string) chan result {
		ch := make(chan result, 1)
		go func() {
			resp, body := getAs(t, ts.URL, client)
			ch <- result{resp.StatusCode, body}
		}()
		return ch
	}

	holder := fire("heavy") // takes the slot
	<-started
	queued := fire("light") // queues (depth 1 of 1)
	deadline := time.Now().Add(5 * time.Second)
	for s.admit.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("light request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue half full and "heavy" holds the majority wall share: shed it.
	res := <-fire("heavy")
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("heavy client: %d, want 503", res.status)
	}
	env := decodeEnvelope(t, res.body)
	if env.Error.Code != api.CodeOverloaded {
		t.Errorf("heavy shed code = %q", env.Error.Code)
	}
	if got := env.Error.Details["reason"]; got != "heaviest_client" {
		t.Errorf("heavy shed reason = %v, want heaviest_client", got)
	}

	// A light client hits the ordinary queue-full shed, whose details
	// carry the depth so the client can size its back-off.
	res = <-fire("light")
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("light client: %d, want 503", res.status)
	}
	env = decodeEnvelope(t, res.body)
	if got, ok := env.Error.Details["queue_depth"].(float64); !ok || got != 1 {
		t.Errorf("queue_depth detail = %v, want 1", env.Error.Details["queue_depth"])
	}
	if got, ok := env.Error.Details["max_queue"].(float64); !ok || got != 1 {
		t.Errorf("max_queue detail = %v, want 1", env.Error.Details["max_queue"])
	}

	release <- struct{}{}
	release <- struct{}{}
	if res := <-holder; res.status != http.StatusOK {
		t.Errorf("holder finished %d", res.status)
	}
	if res := <-queued; res.status != http.StatusOK {
		t.Errorf("queued request finished %d", res.status)
	}
}

// TestDebugRingFilters drives traced traffic and filters the trace and
// slow rings by route, plan, and duration.
func TestDebugRingFilters(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{TraceSample: 1, SlowQuery: time.Nanosecond})
	uploadPaperGraph(t, ts)
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/paper/query",
		map[string]any{"dsl": dataset.PaperQueryDSL, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr struct {
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal(body, &qr); err != nil || qr.Plan == "" {
		t.Fatalf("no plan in query response: %v %s", err, body)
	}

	fetchTraces := func(query string) api.DebugTracesResponse {
		t.Helper()
		resp, body := do(t, "GET", ts.URL+"/api/v1/debug/traces"+query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug/traces%s: %d %s", query, resp.StatusCode, body)
		}
		var tr api.DebugTracesResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	all := fetchTraces("")
	if len(all.Traces) < 2 {
		t.Fatalf("expected traces for upload and query, got %d", len(all.Traces))
	}
	byRoute := fetchTraces("?route=query")
	if len(byRoute.Traces) != 1 || byRoute.Traces[0].Name != "query" {
		t.Errorf("route filter returned %d traces", len(byRoute.Traces))
	}
	byPlan := fetchTraces("?plan=" + qr.Plan)
	if len(byPlan.Traces) != 1 {
		t.Errorf("plan=%s filter returned %d traces", qr.Plan, len(byPlan.Traces))
	}
	if got := fetchTraces("?plan=no-such-plan"); len(got.Traces) != 0 {
		t.Errorf("bogus plan matched %d traces", len(got.Traces))
	}
	if got := fetchTraces("?min_ms=3600000"); len(got.Traces) != 0 {
		t.Errorf("min_ms=1h matched %d traces", len(got.Traces))
	}
	if resp, body := do(t, "GET", ts.URL+"/api/v1/debug/traces?min_ms=-1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative min_ms: %d %s", resp.StatusCode, body)
	}

	// The slow ring (threshold 1ns: everything) takes the same filters.
	resp, body = do(t, "GET", ts.URL+"/api/v1/debug/slow?route=query", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/slow: %d %s", resp.StatusCode, body)
	}
	var sl api.DebugSlowResponse
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatal(err)
	}
	if len(sl.Entries) != 1 || sl.Entries[0].Route != "query" {
		t.Errorf("slow route filter returned %d entries", len(sl.Entries))
	}
	if resp, _ := do(t, "GET", ts.URL+"/api/v1/debug/slow?min_ms=nope", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed min_ms on slow ring: %d", resp.StatusCode)
	}
}

// TestHealthzDegradedOnReplicationFault severs the replication link
// with the netfault proxy and asserts the follower's /healthz walks to
// degraded — still HTTP 200, never unhealthy, with the replication
// component naming the reason — and recovers to ok when the follower
// reconnects.
func TestHealthzDegradedOnReplicationFault(t *testing.T) {
	m, err := wal.Open(wal.Options{Dir: t.TempDir(), Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	leng := engine.New(engine.Options{Persistence: m})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Every accepted replication conn goes through a fault injector.
	var conns []*testutil.FaultConn
	var connCh = make(chan *testutil.FaultConn, 8)
	fln := testutil.WrapListener(ln, func(c net.Conn) net.Conn {
		fc := testutil.NewFaultConn(c)
		connCh <- fc
		return fc
	})
	ld, err := replication.NewLeader(replication.LeaderOptions{
		Engine: leng, WAL: m, Listener: fln,
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	feng := engine.New(engine.Options{})
	fl, err := replication.NewFollower(replication.FollowerOptions{
		Engine: feng, Leader: ld.Addr(),
		ReconnectMin: 20 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	fsrv := New(feng)
	fsrv.SetReplication(fl)
	fts := httptest.NewServer(fsrv)
	defer fts.Close()

	health := func() (string, int, []account.HealthCheck) {
		t.Helper()
		resp, body := do(t, "GET", fts.URL+"/healthz", nil)
		var hb healthBody
		if err := json.Unmarshal(body, &hb); err != nil {
			t.Fatalf("healthz body: %v %s", err, body)
		}
		return hb.Status, resp.StatusCode, hb.Components
	}

	waitStatus := func(want string) []account.HealthCheck {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			status, code, comps := health()
			if status == want {
				if code != http.StatusOK {
					t.Fatalf("status %q answered HTTP %d, want 200", status, code)
				}
				return comps
			}
			if status == "unhealthy" {
				t.Fatalf("rollup escalated to unhealthy; a single degraded component must not")
			}
			if time.Now().After(deadline) {
				t.Fatalf("healthz stuck at %q, want %q", status, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Connected follower: ok.
	waitStatus("ok")

	// Cut every replication conn the leader accepted so the follower
	// observes a dead link mid-session.
	for {
		select {
		case fc := <-connCh:
			conns = append(conns, fc)
		default:
		}
		if len(conns) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, fc := range conns {
		fc.Sever()
	}

	comps := waitStatus("degraded")
	var replCheck *account.HealthCheck
	for i := range comps {
		if comps[i].Component == "replication" {
			replCheck = &comps[i]
		} else if comps[i].Status != account.StatusOK {
			t.Errorf("component %s also degraded: %+v", comps[i].Component, comps[i])
		}
	}
	if replCheck == nil || replCheck.Status != account.StatusDegraded || replCheck.Detail == "" {
		t.Fatalf("replication component not degraded with a reason: %+v", comps)
	}

	// The follower reconnects through fresh (unfaulted) conns and the
	// rollup walks back to ok — degradation is not sticky.
	waitStatus("ok")
}
