package server

// Tests for the serving-tier middleware chain: auth, rate limiting,
// admission control + shedding, deadline propagation into the engine,
// the error envelope, metrics exposition, and byte-compatibility of the
// legacy /api aliases against /api/v1.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"expfinder/internal/api"
	"expfinder/internal/engine"
)

func newConfiguredServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	eng := engine.New(engine.Options{})
	s := New(eng, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s
}

func decodeEnvelope(t *testing.T, body []byte) api.ErrorEnvelope {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the envelope: %v: %s", err, body)
	}
	if env.Error.Code == "" {
		t.Fatalf("envelope without a code: %s", body)
	}
	return env
}

func TestAuthRequired(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{AuthToken: "sekrit"})

	resp, body := do(t, "GET", ts.URL+"/api/v1/graphs", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", resp.StatusCode)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != api.CodeUnauthorized {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeUnauthorized)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/graphs", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", resp2.StatusCode)
	}

	req, _ = http.NewRequest("GET", ts.URL+"/api/v1/graphs", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("valid token: %d, want 200", resp3.StatusCode)
	}

	// Legacy aliases sit behind the same auth.
	resp4, _ := do(t, "GET", ts.URL+"/api/graphs", nil)
	if resp4.StatusCode != http.StatusUnauthorized {
		t.Fatalf("legacy without token: %d, want 401", resp4.StatusCode)
	}

	// Probes and scrapes stay open.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp5, _ := do(t, "GET", ts.URL+path, nil)
		if resp5.StatusCode != http.StatusOK {
			t.Errorf("%s behind auth: %d, want 200", path, resp5.StatusCode)
		}
	}
}

func TestRateLimit(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{RateLimit: 1, RateBurst: 2})

	get := func(client string) *http.Response {
		req, _ := http.NewRequest("GET", ts.URL+"/api/v1/graphs", nil)
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Burst of 2 passes, third request is limited.
	for i := 0; i < 2; i++ {
		if resp := get("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d, want 200", i, resp.StatusCode)
		}
	}
	limited := get("alice")
	if limited.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: %d, want 429", limited.StatusCode)
	}
	if limited.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Another client has its own bucket.
	if resp := get("bob"); resp.StatusCode != http.StatusOK {
		t.Errorf("independent client limited: %d", resp.StatusCode)
	}
}

func TestRateLimiterRefill(t *testing.T) {
	rl := newRateLimiter(10, 1)
	now := time.Unix(0, 0)
	if ok, _, _ := rl.allow("c", now); !ok {
		t.Fatal("first request should pass")
	}
	if ok, remaining, wait := rl.allow("c", now); ok || wait <= 0 || remaining != 0 {
		t.Fatalf("drained bucket passed (remaining %d, wait %v)", remaining, wait)
	}
	// 100ms at 10 req/s refills exactly one token.
	if ok, _, _ := rl.allow("c", now.Add(100*time.Millisecond)); !ok {
		t.Fatal("bucket did not refill")
	}
}

// TestQueueShed drives the admission middleware deterministically: one
// slot held by a blocked request, one queued, and the next shed with
// 503 + Retry-After.
func TestQueueShed(t *testing.T) {
	eng := engine.New(engine.Options{})
	s := New(eng, Config{MaxInflight: 1, MaxQueue: 1})

	started := make(chan struct{}, 2)
	release := make(chan struct{})
	h := s.withAdmission(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release // reads proceed immediately once release is closed
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	get := func() int {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Error(err)
			return 0
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// First request takes the only slot and blocks inside the handler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code := get(); code != http.StatusOK {
			t.Errorf("slot holder: %d", code)
		}
	}()
	<-started

	// Second request queues; wait until the queue registers it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code := get(); code != http.StatusOK {
			t.Errorf("queued request: %d", code)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.admit.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request finds the queue full and is shed.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf [1024]byte
	n, _ := resp.Body.Read(buf[:])
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if env := decodeEnvelope(t, buf[:n]); env.Error.Code != api.CodeOverloaded {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeOverloaded)
	}
	if got := s.mShed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	// Unblock: slot holder finishes, queued request runs to completion.
	close(release)
	wg.Wait()
}

// TestDeadlinePropagation configures a request timeout so short it has
// always expired by the time the handler runs; Engine.QueryCtx must see
// the dead context and the server must answer 504 deadline_exceeded.
func TestDeadlinePropagation(t *testing.T) {
	ts, _ := newConfiguredServer(t, Config{RequestTimeout: time.Nanosecond})
	uploadPaperGraph(t, ts)

	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/paper/query",
		`{"dsl": "node A output", "k": 3}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: %d %s, want 504", resp.StatusCode, body)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != api.CodeDeadlineExceeded {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeDeadlineExceeded)
	}
}

func TestErrorEnvelopeCodes(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)

	cases := []struct {
		name         string
		method, path string
		body         any
		status       int
		code         string
	}{
		{"graph_not_found", "GET", "/api/v1/graphs/nope", nil,
			http.StatusNotFound, api.CodeGraphNotFound},
		{"invalid_pattern", "POST", "/api/v1/graphs/paper/query",
			`{"dsl": "frobnicate"}`, http.StatusBadRequest, api.CodeInvalidPattern},
		{"invalid_request", "POST", "/api/v1/graphs/paper/query",
			`{not json`, http.StatusBadRequest, api.CodeInvalidRequest},
		{"graph_exists", "POST", "/api/v1/graphs/paper",
			`{"generator": {"kind": "collab", "nodes": 4, "avg_degree": 1}}`,
			http.StatusConflict, api.CodeGraphExists},
		{"node_not_found", "DELETE", "/api/v1/graphs/paper/nodes/99999", nil,
			http.StatusNotFound, api.CodeNodeNotFound},
		{"index_not_found", "GET", "/api/v1/graphs/paper/index", nil,
			http.StatusNotFound, api.CodeIndexNotFound},
		{"partition_not_found", "GET", "/api/v1/graphs/paper/partitions", nil,
			http.StatusNotFound, api.CodePartitionNotFound},
		{"subscription_not_found", "DELETE", "/api/v1/graphs/paper/subscriptions/nope", nil,
			http.StatusNotFound, api.CodeSubscriptionNotFound},
		{"persistence_disabled", "POST", "/api/v1/admin/persistence/checkpoint", nil,
			http.StatusConflict, api.CodePersistenceDisabled},
		{"unknown_route", "GET", "/api/v1/definitely/not/a/route", nil,
			http.StatusNotFound, api.CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := do(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if env := decodeEnvelope(t, body); env.Error.Code != tc.code {
				t.Errorf("code = %q, want %q (%s)", env.Error.Code, tc.code, body)
			}
		})
	}
}

// TestLegacyAliasByteCompat runs the same requests against /api and
// /api/v1 and requires byte-identical bodies (after zeroing the one
// nondeterministic field, elapsed_us). The legacy surface must also
// mark itself deprecated.
func TestLegacyAliasByteCompat(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)

	canon := func(body []byte) string {
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			return string(body)
		}
		delete(m, "elapsed_us")
		out, _ := json.Marshal(m)
		return string(out)
	}

	reqs := []struct {
		method, path string
		body         any
	}{
		{"GET", "/graphs", nil},
		{"GET", "/graphs/paper/stats", nil},
		{"POST", "/graphs/paper/query", `{"dsl": "node A output", "k": 3}`},
		{"POST", "/graphs/paper/query", `{"dsl": "node A output", "k": 3, "semantics": "dual"}`},
		{"GET", "/cache/stats", nil},
		{"GET", "/subscriptions/stats", nil},
		{"GET", "/admin/persistence", nil},
		{"GET", "/graphs/missing", nil}, // error envelope must match too
	}
	for _, rq := range reqs {
		respV1, bodyV1 := do(t, rq.method, ts.URL+"/api/v1"+rq.path, rq.body)
		respLegacy, bodyLegacy := do(t, rq.method, ts.URL+"/api"+rq.path, rq.body)
		if respV1.StatusCode != respLegacy.StatusCode {
			t.Errorf("%s %s: status v1=%d legacy=%d", rq.method, rq.path,
				respV1.StatusCode, respLegacy.StatusCode)
			continue
		}
		if c1, c2 := canon(bodyV1), canon(bodyLegacy); c1 != c2 {
			t.Errorf("%s %s: bodies differ\n  v1:     %s\n  legacy: %s",
				rq.method, rq.path, c1, c2)
		}
		if respLegacy.Header.Get("Deprecation") != "true" {
			t.Errorf("%s %s: legacy response missing Deprecation header", rq.method, rq.path)
		}
		if respV1.Header.Get("Deprecation") != "" {
			t.Errorf("%s %s: v1 response carries Deprecation header", rq.method, rq.path)
		}
	}
}

// TestSubscriptionEventsURLMatchesSurface checks events_url points back
// into the surface that created the subscription.
func TestSubscriptionEventsURLMatchesSurface(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)

	for _, prefix := range []string{"/api", "/api/v1"} {
		resp, body := do(t, "POST", ts.URL+prefix+"/graphs/paper/subscriptions",
			`{"dsl": "node A output"}`)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("%s: create subscription: %d %s", prefix, resp.StatusCode, body)
		}
		var sub api.SubscribeResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%s/graphs/paper/subscriptions/%s/events", prefix, sub.ID)
		if sub.EventsURL != want {
			t.Errorf("%s: events_url = %q, want %q", prefix, sub.EventsURL, want)
		}
		// The advertised URL must actually resolve on its surface.
		req, _ := http.NewRequest("DELETE",
			ts.URL+prefix+"/graphs/paper/subscriptions/"+sub.ID, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusNoContent {
			t.Errorf("%s: delete subscription: %d", prefix, dresp.StatusCode)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)
	if resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/paper/query",
		`{"dsl": "node A output", "k": 3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	resp, body := do(t, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		`expfinder_http_requests_total{route="create_graph",method="POST",code="201"} 1`,
		`expfinder_http_requests_total{route="query",method="POST",code="200"} 1`,
		`expfinder_http_request_duration_seconds_count{route="query"} 1`,
		"# TYPE expfinder_http_request_duration_seconds histogram",
		"expfinder_admission_shed_total 0",
		"expfinder_admission_queue_depth 0",
		"expfinder_graphs 1",
		"expfinder_cache_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := do(t, "GET", ts.URL+"/api/v1/graphs", nil)
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/graphs", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "caller-supplied-1" {
		t.Errorf("X-Request-ID = %q, want caller-supplied id echoed", got)
	}
}

func TestSSEStillStreamsThroughChain(t *testing.T) {
	// The SSE route opts out of admission; this guards the Flusher
	// passthrough of the statusWriter wrapper under the full chain.
	ts, _ := newTestServer(t)
	uploadPaperGraph(t, ts)
	resp, body := do(t, "POST", ts.URL+"/api/v1/graphs/paper/subscriptions",
		`{"dsl": "node A output"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create subscription: %d %s", resp.StatusCode, body)
	}
	var sub api.SubscribeResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// The snapshot event must arrive without the handler returning —
	// proof the Flush calls reach the wire through the wrappers.
	buf := make([]byte, 256)
	n, err := sresp.Body.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "event: snapshot") {
		t.Fatalf("first SSE read = %q, err %v", buf[:n], err)
	}
}
