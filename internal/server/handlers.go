package server

// Handlers for the API route table (routes.go). Wire shapes live in
// internal/api; every handler here decodes into and encodes from those
// DTOs, shared verbatim by the /api/v1 surface and the legacy /api
// aliases. Handlers run innermost in the middleware chain, so
// r.Context() already carries the admission deadline when one is
// configured — engine calls taking a context stop computing when the
// client's budget runs out.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"expfinder/internal/api"
	"expfinder/internal/compress"
	"expfinder/internal/distindex"
	"expfinder/internal/engine"
	"expfinder/internal/generator"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/match"
	"expfinder/internal/pattern"
	"expfinder/internal/rank"
	"expfinder/internal/strongsim"
	"expfinder/internal/viz"
)

// queryResponse is kept as an alias so pre-v1 in-package call sites
// (and the server tests) keep compiling against the api type.
type queryResponse = api.QueryResponse

func (s *Server) listGraphs(w http.ResponseWriter, r *http.Request) {
	var out []api.GraphSummary
	for _, name := range s.eng.ListGraphs() {
		var en api.GraphSummary
		if err := s.eng.WithGraph(name, func(g *graph.Graph) error {
			en = api.GraphSummary{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()}
			return nil
		}); err != nil {
			continue
		}
		out = append(out, en)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) createGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req api.CreateGraphRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var g *graph.Graph
	switch {
	case req.Generator != nil:
		g, err = generator.Generate(generator.Kind(req.Generator.Kind), generator.Config{
			Nodes: req.Generator.Nodes, AvgDegree: req.Generator.AvgDegree, Seed: req.Generator.Seed,
		})
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case req.Graph != nil:
		g = graph.New(0)
		if err := g.UnmarshalJSON(req.Graph); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, errors.New("request needs either graph or generator"))
		return
	}
	if err := s.eng.AddGraph(name, g); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, api.CreateGraphResponse{
		Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges(),
	})
}

// Read endpoints serialize into a buffer inside the graph's read scope
// and write to the client after releasing it: streaming to a slow client
// under the lock would let that client stall the graph's writers (and,
// via RWMutex writer preference, every other reader).

func (s *Server) getGraph(w http.ResponseWriter, r *http.Request) {
	var buf jsonBuilder
	err := s.eng.WithGraph(r.PathValue("name"), func(g *graph.Graph) error {
		return g.WriteJSON(&buf)
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.buf)
}

func (s *Server) deleteGraph(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.RemoveGraph(r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) graphStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body map[string]any
	err := s.eng.WithGraph(name, func(g *graph.Graph) error {
		st := g.ComputeStats()
		body = map[string]any{
			"nodes": st.Nodes, "edges": st.Edges,
			"max_out_degree": st.MaxOutDeg, "max_in_degree": st.MaxInDeg,
			"labels": st.Labels, "version": g.Version(),
		}
		return nil
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if ixStats, err := s.eng.IndexStats(name); err == nil {
		body["index"] = ixStats
	}
	if ptStats, err := s.eng.PartitionStats(name); err == nil {
		body["partitions"] = ptStats
	}
	// The online statistics: log-bucketed degree histograms, label
	// frequencies, and label-pair selectivities (absent with stats
	// disabled). Works on followers too — a pure read.
	if snap, err := s.eng.GraphStatistics(name); err == nil && snap != nil {
		body["statistics"] = snap
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) graphDOT(w http.ResponseWriter, r *http.Request) {
	var buf jsonBuilder
	err := s.eng.WithGraph(r.PathValue("name"), func(g *graph.Graph) error {
		return viz.WriteGraph(&buf, g, viz.Options{MaxNodes: 500, DrillDown: r.URL.Query().Get("drilldown") == "1"})
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	_, _ = w.Write(buf.buf)
}

// metricByName resolves a ranking metric; "" means the paper's default.
func metricByName(name string) (rank.Metric, error) {
	switch name {
	case "", rank.AvgDistance{}.Name():
		return rank.AvgDistance{}, nil
	case rank.Closeness{}.Name():
		return rank.Closeness{}, nil
	case rank.Degree{}.Name():
		return rank.Degree{}, nil
	case (rank.PageRank{}).Name():
		return rank.PageRank{}, nil
	default:
		return nil, fmt.Errorf("unknown metric %q", name)
	}
}

func parsePattern(req api.QueryRequest) (*pattern.Pattern, error) {
	switch {
	case req.DSL != "":
		return pattern.Parse(req.DSL)
	case req.Pattern != nil:
		q := pattern.New()
		if err := q.UnmarshalJSON(req.Pattern); err != nil {
			return nil, err
		}
		return q, nil
	default:
		return nil, errors.New("request needs pattern or dsl")
	}
}

func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q, err := parsePattern(req)
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidPattern, err)
		return
	}
	metric, err := metricByName(req.Metric)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var res *engine.Result
	switch req.Semantics {
	case "", "bounded":
		res, err = s.eng.QueryCtx(r.Context(), name, q, req.K)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		if req.Metric != "" && req.Metric != (rank.AvgDistance{}).Name() {
			res.TopK = rank.TopKByMetricWithResultGraph(res.ResultGraph, q, res.Relation, req.K, metric)
		}
	case "dual":
		// Dual simulation bypasses the engine pipeline (no cache or
		// compression routing is defined for it); evaluated directly
		// inside the graph's read scope — through the distance index
		// when a fresh *complete* one is registered (a partial index
		// would pay a per-pair BFS fallback for every label-undecided
		// witness check, easily dwarfing the single traversal it
		// replaces). The index pointer is fetched before entering the
		// read scope (no nested engine locks); freshness is re-checked
		// inside it.
		if err := q.Validate(); err != nil {
			writeCode(w, http.StatusBadRequest, api.CodeInvalidPattern, err)
			return
		}
		ix, ixErr := s.eng.Index(name)
		err = s.eng.WithGraph(name, func(g *graph.Graph) error {
			start := time.Now()
			var rel *match.Relation
			source := engine.SourceDirect
			if ixErr == nil && ix.Complete() && ix.Fresh(g) {
				rel = strongsim.DualIndexedCtx(r.Context(), g, q, ix)
				source = engine.SourceIndexed
			} else {
				rel = strongsim.DualCtx(r.Context(), g, q)
			}
			rg := match.BuildResultGraph(g, q, rel)
			res = &engine.Result{
				Relation:    rel,
				ResultGraph: rg,
				TopK:        rank.TopKByMetricWithResultGraph(rg, q, rel, req.K, metric),
				Plan:        "dual-simulation",
				Source:      source,
				Elapsed:     time.Since(start),
			}
			return nil
		})
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown semantics %q", req.Semantics))
		return
	}
	resp := s.render(name, q, res, r.URL.Query().Get("dot") == "1")
	resp.Trace = inlineTrace(r)
	writeJSON(w, http.StatusOK, resp)
}

// render builds the wire response inside the graph's read scope so
// display-name lookups and DOT export never race engine mutations. If
// the graph was removed after the query answered (against its
// pre-removal snapshot), the result is still rendered — just without
// graph-resident display names or DOT.
func (s *Server) render(name string, q *pattern.Pattern, res *engine.Result, withDot bool) queryResponse {
	var resp queryResponse
	if err := s.eng.WithGraph(name, func(g *graph.Graph) error {
		resp = responseFor(g, q, res, withDot)
		return nil
	}); err != nil {
		resp = responseFor(nil, q, res, false)
	}
	return resp
}

// responseFor renders an engine result into the wire form shared by the
// single-query and batch endpoints. g may be nil (graph removed after
// the query answered): matches and ranks still render, display names
// and DOT are skipped.
func responseFor(g *graph.Graph, q *pattern.Pattern, res *engine.Result, withDot bool) queryResponse {
	resp := queryResponse{
		Plan:      string(res.Plan),
		Source:    string(res.Source),
		ElapsedUS: res.Elapsed.Microseconds(),
		Matches:   map[string][]int64{},
	}
	for i := 0; i < q.NumNodes(); i++ {
		idx := pattern.NodeIdx(i)
		ids := res.Relation.MatchesOf(idx)
		out := make([]int64, len(ids))
		for j, id := range ids {
			out[j] = int64(id)
		}
		resp.Matches[q.Node(idx).Name] = out
	}
	for _, t := range res.TopK {
		entry := api.TopEntry{Node: int64(t.Node), Rank: t.Rank, Connected: t.Connected}
		if g != nil {
			if v, ok := g.Attr(t.Node, "name"); ok {
				entry.Name = v.Str()
			}
		}
		resp.TopK = append(resp.TopK, entry)
	}
	if withDot && g != nil {
		var dot jsonBuilder
		if err := viz.WriteTopK(&dot, g, res.ResultGraph, res.TopK, viz.Options{}); err == nil {
			resp.ResultDOT = dot.String()
		}
	}
	return resp
}

// queryBatch evaluates many queries in one request through the engine's
// bounded parallel executor. Outcomes come back in request order, and a
// failed query never fails the batch.
func (s *Server) queryBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("request needs a non-empty queries list"))
		return
	}
	entries := make([]api.BatchEntry, len(req.Queries))
	patterns := make([]*pattern.Pattern, len(req.Queries))
	metrics := make([]rank.Metric, len(req.Queries))
	var reqs []engine.QueryRequest
	var at []int // reqs index -> entries index
	for i, bq := range req.Queries {
		q, err := parsePattern(api.QueryRequest{Pattern: bq.Pattern, DSL: bq.DSL})
		if err == nil {
			metrics[i], err = metricByName(bq.Metric)
		}
		if err != nil {
			entries[i].Error = err.Error()
			continue
		}
		patterns[i] = q
		reqs = append(reqs, engine.QueryRequest{Graph: bq.Graph, Pattern: q, K: bq.K})
		at = append(at, i)
	}
	outcomes := s.eng.QueryBatch(r.Context(), reqs)
	for j, oc := range outcomes {
		i := at[j]
		if oc.Err != nil {
			entries[i].Error = oc.Err.Error()
			continue
		}
		bq := req.Queries[i]
		if bq.Metric != "" && bq.Metric != (rank.AvgDistance{}).Name() {
			oc.Result.TopK = rank.TopKByMetricWithResultGraph(
				oc.Result.ResultGraph, patterns[i], oc.Result.Relation, bq.K, metrics[i])
		}
		entries[i].QueryResponse = s.render(bq.Graph, patterns[i], oc.Result, false)
	}
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: entries, Trace: inlineTrace(r)})
}

func (s *Server) applyUpdates(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.UpdateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ops := make([]incremental.Update, 0, len(req.Ops))
	for _, o := range req.Ops {
		switch o.Op {
		case "insert":
			ops = append(ops, incremental.Insert(graph.NodeID(o.From), graph.NodeID(o.To)))
		case "delete":
			ops = append(ops, incremental.Delete(graph.NodeID(o.From), graph.NodeID(o.To)))
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown op %q", o.Op))
			return
		}
	}
	deltas, notified, err := s.eng.PushUpdatesCtx(r.Context(), name, ops)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	out := make([]api.DeltaSummary, 0, len(deltas))
	for _, d := range deltas {
		out = append(out, api.DeltaSummary{PatternHash: d.PatternHash, Added: len(d.Added), Removed: len(d.Removed)})
	}
	writeJSON(w, http.StatusOK, api.UpdateResponse{
		Applied: len(ops), Deltas: out, Notified: notified,
	})
}

func (s *Server) addNode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.AddNodeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	attrs := graph.Attrs(req.Attrs)
	id, err := s.eng.AddNode(name, req.Label, attrs)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, api.AddNodeResponse{ID: int64(id)})
}

func parseNodeID(r *http.Request) (graph.NodeID, error) {
	raw := r.PathValue("id")
	id, err := json.Number(raw).Int64()
	if err != nil || id < 0 {
		return graph.Invalid, fmt.Errorf("bad node id %q", raw)
	}
	return graph.NodeID(id), nil
}

func (s *Server) removeNode(w http.ResponseWriter, r *http.Request) {
	id, err := parseNodeID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	if err := s.eng.RemoveNode(name, id); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Node removals invalidate standing queries lazily; flush here so
	// subscribers streaming events see the delta now rather than at the
	// next edge-update batch.
	_, _ = s.eng.FlushSubscriptions(name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) setNodeAttrs(w http.ResponseWriter, r *http.Request) {
	id, err := parseNodeID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var attrs map[string]graph.Value
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&attrs); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	for key, v := range attrs {
		if err := s.eng.SetNodeAttr(name, id, key, v); err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
	}
	// One flush after the whole attribute batch (see removeNode).
	_, _ = s.eng.FlushSubscriptions(name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) compressGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.CompressRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	scheme := compress.Bisimulation
	if req.Scheme == compress.SimulationEquivalence.String() {
		scheme = compress.SimulationEquivalence
	} else if req.Scheme != "" && req.Scheme != compress.Bisimulation.String() {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown scheme %q", req.Scheme))
		return
	}
	var view compress.View
	if !req.FullView {
		view = compress.View(req.View)
		if req.View == nil {
			view = compress.View{}
		}
	}
	c, err := s.eng.CompressGraph(name, scheme, view)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, api.CompressResponse{
		Scheme: scheme.String(),
		Nodes:  c.Graph().NumNodes(),
		Edges:  c.Graph().NumEdges(),
		Ratio:  c.Ratio(),
	})
}

func (s *Server) dropCompression(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.DropCompression(r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) buildIndex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.IndexRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.eng.BuildIndex(name, distindex.Options{Landmarks: req.Landmarks})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) indexStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.eng.IndexStats(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) dropIndex(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.DropIndex(r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) registerQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q, err := parsePattern(req)
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidPattern, err)
		return
	}
	if err := s.eng.RegisterQuery(name, q); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, api.RegisterResponse{Registered: q.Hash()})
}

func (s *Server) cacheStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.CacheStats()
	writeJSON(w, http.StatusOK, api.CacheStatsResponse{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		Entries: st.Entries, Bytes: st.Bytes, BudgetBytes: st.BudgetBytes,
	})
}
