package server

// Serving-tier surface of internal/account: route classification, SLO
// objective defaults, the component-health probes /healthz rolls up,
// the expfinder_client_*/expfinder_slo_*/expfinder_component_health
// metric families, and the GET /stats/clients and GET /slo handlers.

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"expfinder/internal/account"
	"expfinder/internal/api"
	"expfinder/internal/metrics"
)

// sloWindows are the trailing windows every SLO report and metric
// renders: fast burn shows in 1m, sustained burn in 1h.
var sloWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// routeClass maps a route name to its SLO class. Classes, not routes,
// carry objectives: a latency target for "mutation" should not need
// restating for every one of the dozen write routes.
func routeClass(route string) string {
	switch route {
	case "query", "query_batch":
		return "query"
	case "create_graph", "delete_graph", "apply_updates", "add_node",
		"remove_node", "set_node_attrs", "compress_graph", "drop_compression",
		"build_index", "drop_index", "build_partitions", "drop_partitions",
		"register_query", "force_checkpoint":
		return "mutation"
	case "create_subscription", "delete_subscription", "stream_events":
		return "stream"
	case "promote":
		return "admin"
	}
	if strings.HasPrefix(route, "debug_") {
		return "debug"
	}
	// Everything else is a cheap read (listings, stats, cache counters).
	return "read"
}

// defaultSLOTargets are the p99 latency targets per route class.
// Streams and admin operations are open-ended by design (an SSE
// connection lives as long as the client wants), so they carry no
// latency objective — availability still applies.
var defaultSLOTargets = map[string]time.Duration{
	"query":    500 * time.Millisecond,
	"mutation": 250 * time.Millisecond,
	"read":     100 * time.Millisecond,
	"debug":    100 * time.Millisecond,
}

// sloObjectives merges configured targets over the defaults.
func sloObjectives(targets map[string]time.Duration) map[string]account.Objective {
	out := map[string]account.Objective{}
	for class, d := range defaultSLOTargets {
		out[class] = account.Objective{Latency: d}
	}
	for class, d := range targets {
		out[class] = account.Objective{Latency: d}
	}
	return out
}

// HealthThresholds tunes when a component degrades the /healthz
// rollup. Zero fields take the documented defaults; admission-queue
// thresholds are structural (half full degrades, full is unhealthy)
// and not configurable here.
type HealthThresholds struct {
	// ReplicationLagDegraded / ReplicationLagUnhealthy are lag-record
	// thresholds (defaults 500 / 5000).
	ReplicationLagDegraded  uint64
	ReplicationLagUnhealthy uint64
	// CheckpointLagBytes degrades when any graph's WAL grew this far
	// past its last checkpoint (default 256 MiB).
	CheckpointLagBytes int64
	// WALDiskBytes degrades when the total on-disk WAL footprint
	// crosses it (default 4 GiB).
	WALDiskBytes int64
	// SubscriptionBacklog degrades when that many undelivered events
	// are buffered across subscriptions (default 65536).
	SubscriptionBacklog int
}

// withDefaults fills zero thresholds.
func (t HealthThresholds) withDefaults() HealthThresholds {
	if t.ReplicationLagDegraded == 0 {
		t.ReplicationLagDegraded = 500
	}
	if t.ReplicationLagUnhealthy == 0 {
		t.ReplicationLagUnhealthy = 5000
	}
	if t.CheckpointLagBytes == 0 {
		t.CheckpointLagBytes = 256 << 20
	}
	if t.WALDiskBytes == 0 {
		t.WALDiskBytes = 4 << 30
	}
	if t.SubscriptionBacklog == 0 {
		t.SubscriptionBacklog = 65536
	}
	return t
}

// registerHealthComponents wires every component probe. Probes read
// s.repl/s.recovery at evaluation time, so registering before
// SetReplication/SetRecoverySummary is fine.
func (s *Server) registerHealthComponents() {
	th := s.cfg.Health.withDefaults()

	s.health.Register("replication", func() (account.HealthStatus, string) {
		if s.repl == nil {
			return account.StatusOK, ""
		}
		st := s.repl.Status()
		if st.Role == "follower" && !st.Connected {
			return account.StatusDegraded, "follower disconnected from leader " + st.Leader
		}
		lag := st.LagRecords
		switch {
		case lag >= th.ReplicationLagUnhealthy:
			return account.StatusUnhealthy, fmt.Sprintf("lag %d records over unhealthy threshold %d", lag, th.ReplicationLagUnhealthy)
		case lag >= th.ReplicationLagDegraded:
			return account.StatusDegraded, fmt.Sprintf("lag %d records over degraded threshold %d", lag, th.ReplicationLagDegraded)
		}
		return account.StatusOK, ""
	})

	s.health.Register("wal_disk", func() (account.HealthStatus, string) {
		if !s.eng.PersistenceEnabled() {
			return account.StatusOK, ""
		}
		st, err := s.eng.PersistenceStats()
		if err != nil {
			return account.StatusDegraded, "persistence stats unavailable: " + err.Error()
		}
		if st.FsyncFailures > 0 {
			return account.StatusUnhealthy, fmt.Sprintf("%d fsync failures", st.FsyncFailures)
		}
		var total int64
		for _, g := range st.Graphs {
			if g.Broken {
				return account.StatusUnhealthy, "graph " + g.Name + " has a broken log"
			}
			total += g.WALBytes
		}
		if total >= th.WALDiskBytes {
			return account.StatusDegraded, fmt.Sprintf("WAL footprint %d bytes over threshold %d", total, th.WALDiskBytes)
		}
		return account.StatusOK, ""
	})

	s.health.Register("checkpoint", func() (account.HealthStatus, string) {
		if !s.eng.PersistenceEnabled() {
			return account.StatusOK, ""
		}
		st, err := s.eng.PersistenceStats()
		if err != nil {
			return account.StatusOK, ""
		}
		for _, g := range st.Graphs {
			if g.BytesSinceCheckpoint >= th.CheckpointLagBytes {
				return account.StatusDegraded, fmt.Sprintf("graph %s grew %d bytes past its checkpoint (threshold %d)",
					g.Name, g.BytesSinceCheckpoint, th.CheckpointLagBytes)
			}
		}
		return account.StatusOK, ""
	})

	s.health.Register("admission_queue", func() (account.HealthStatus, string) {
		if s.admit == nil {
			return account.StatusOK, ""
		}
		depth := s.admit.queued.Load()
		switch {
		case depth >= s.admit.maxQueue:
			return account.StatusUnhealthy, fmt.Sprintf("queue full (%d/%d), shedding", depth, s.admit.maxQueue)
		case depth*2 >= s.admit.maxQueue:
			return account.StatusDegraded, fmt.Sprintf("queue %d/%d over half full", depth, s.admit.maxQueue)
		}
		return account.StatusOK, ""
	})

	s.health.Register("subscriptions", func() (account.HealthStatus, string) {
		if backlog := s.eng.SubscriptionStats().Backlog; backlog >= th.SubscriptionBacklog {
			return account.StatusDegraded, fmt.Sprintf("%d undelivered events buffered (threshold %d)", backlog, th.SubscriptionBacklog)
		}
		return account.StatusOK, ""
	})

	s.health.Register("recovery", func() (account.HealthStatus, string) {
		if s.recovery == nil {
			return account.StatusOK, ""
		}
		if failed := s.recovery.Failed(); len(failed) > 0 {
			return account.StatusDegraded, fmt.Sprintf("%d graphs failed recovery and are not serving", len(failed))
		}
		return account.StatusOK, ""
	})
}

// registerAccountMetrics exposes the ledger's since-boot per-client
// totals, the SLO tracker's per-class/window measurements, and the
// component-health states. Client labels are bounded by the ledger's
// top-K fold, SLO labels by the fixed class vocabulary.
func (s *Server) registerAccountMetrics() {
	clientCounter := func(name, help string, value func(account.ClientUsage) float64) {
		s.registry.NewCounterVecFunc(name, help, []string{"client"},
			func() []metrics.LabeledValue {
				var out []metrics.LabeledValue
				for _, cu := range s.ledger.Snapshot(0) {
					out = append(out, metrics.LabeledValue{Labels: []string{cu.Client}, Value: value(cu)})
				}
				return out
			})
	}
	clientCounter("expfinder_client_requests_total",
		"Requests charged per client since boot (top-K clients plus the other bucket).",
		func(cu account.ClientUsage) float64 { return float64(cu.Requests) })
	clientCounter("expfinder_client_wall_seconds_total",
		"Request wall time charged per client since boot.",
		func(cu account.ClientUsage) float64 { return float64(cu.WallUS) / 1e6 })
	clientCounter("expfinder_client_queue_seconds_total",
		"Admission/engine queue wait charged per client (traced requests).",
		func(cu account.ClientUsage) float64 { return float64(cu.QueueUS) / 1e6 })
	clientCounter("expfinder_client_bytes_out_total",
		"Response bytes charged per client since boot.",
		func(cu account.ClientUsage) float64 { return float64(cu.BytesOut) })
	clientCounter("expfinder_client_wal_bytes_total",
		"WAL bytes appended on behalf of each client (traced requests).",
		func(cu account.ClientUsage) float64 { return float64(cu.WALBytes) })
	clientCounter("expfinder_client_shed_total",
		"503 responses charged per client since boot.",
		func(cu account.ClientUsage) float64 { return float64(cu.Shed) })

	sloGauge := func(name, help string, value func(account.WindowReport) float64) {
		s.registry.NewGaugeVecFunc(name, help, []string{"class", "window"},
			func() []metrics.LabeledValue {
				var out []metrics.LabeledValue
				for _, cr := range s.slo.Report(sloWindows) {
					for _, wr := range cr.Windows {
						out = append(out, metrics.LabeledValue{
							Labels: []string{cr.Class, wr.Window}, Value: value(wr)})
					}
				}
				return out
			})
	}
	sloGauge("expfinder_slo_availability",
		"Non-5xx share per route class over the trailing window.",
		func(wr account.WindowReport) float64 { return wr.Availability })
	sloGauge("expfinder_slo_latency_attainment",
		"Share of good requests within the class's p99 latency target.",
		func(wr account.WindowReport) float64 { return wr.Attainment })
	sloGauge("expfinder_slo_availability_burn_rate",
		"Availability error-budget spend speed (1.0 = exactly at objective pace).",
		func(wr account.WindowReport) float64 { return wr.AvailabilityBurn })
	sloGauge("expfinder_slo_latency_burn_rate",
		"Latency error-budget spend speed (1.0 = exactly at objective pace).",
		func(wr account.WindowReport) float64 { return wr.LatencyBurn })

	s.registry.NewGaugeVecFunc("expfinder_component_health",
		"Per-component health: 0 ok, 1 degraded, 2 unhealthy.",
		[]string{"component"}, func() []metrics.LabeledValue {
			_, checks := s.health.Evaluate()
			out := make([]metrics.LabeledValue, 0, len(checks))
			for _, c := range checks {
				out = append(out, metrics.LabeledValue{Labels: []string{c.Component}, Value: float64(c.Status)})
			}
			return out
		})
	s.registry.NewGaugeFunc("expfinder_health_status",
		"Process health rollup: 0 ok, 1 degraded, 2 unhealthy (worst component wins).",
		func() float64 {
			st, _ := s.health.Evaluate()
			return float64(st)
		})
}

// parseWindow maps the ?window= query parameter to a ledger window.
func parseWindow(s string) (time.Duration, string, error) {
	switch s {
	case "", "5m":
		return 5 * time.Minute, "5m", nil
	case "1m":
		return time.Minute, "1m", nil
	case "1h":
		return time.Hour, "1h", nil
	case "total":
		return 0, "total", nil
	}
	return 0, "", fmt.Errorf("unknown window %q (want 1m, 5m, 1h, or total)", s)
}

// statsClients serves GET /stats/clients: the per-client resource
// bill over a trailing window (default 5m) or since boot
// (?window=total), heaviest wall time first.
func (s *Server) statsClients(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeEnvelope(w, http.StatusNotFound, api.CodeNotFound,
			"accounting is disabled on this server", nil)
		return
	}
	window, label, err := parseWindow(r.URL.Query().Get("window"))
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidRequest, err)
		return
	}
	clients := s.ledger.Snapshot(window)
	if clients == nil {
		clients = []account.ClientUsage{}
	}
	writeJSON(w, http.StatusOK, api.ClientStatsResponse{
		Window:  label,
		Clients: clients,
		Totals:  s.ledger.Totals(),
	})
}

// sloReport serves GET /slo: per-route-class availability and latency
// attainment with burn rates over the 1m/5m/1h windows.
func (s *Server) sloReport(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		writeEnvelope(w, http.StatusNotFound, api.CodeNotFound,
			"accounting is disabled on this server", nil)
		return
	}
	classes := s.slo.Report(sloWindows)
	if classes == nil {
		classes = []account.ClassReport{}
	}
	writeJSON(w, http.StatusOK, api.SLOResponse{Classes: classes})
}
