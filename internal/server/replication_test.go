package server

// Follower-side serving: a follower must answer queries, streams, and
// cached reads byte-identically to the leader at the same applied
// offset, reject writes with the read_only envelope naming the leader,
// and expose its role and lag through /healthz, the debug endpoint, and
// the promote flow.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"expfinder/internal/dataset"
	"expfinder/internal/engine"
	"expfinder/internal/graph"
	"expfinder/internal/replication"
	"expfinder/internal/storage"
	"expfinder/internal/wal"
)

// replPair is one leader HTTP stack and one follower HTTP stack wired
// through a real replication session.
type replPair struct {
	leaderTS   *httptest.Server
	followerTS *httptest.Server
	leaderEng  *engine.Engine
	follEng    *engine.Engine
	leader     *replication.Leader
	follower   *replication.Follower
}

func newReplPair(t *testing.T) *replPair {
	t.Helper()
	m, err := wal.Open(wal.Options{Dir: t.TempDir(), Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	leng := engine.New(engine.Options{Persistence: m})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := replication.NewLeader(replication.LeaderOptions{
		Engine:         leng,
		WAL:            m,
		Listener:       ln,
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lsrv := New(leng)
	lsrv.SetReplication(ld)
	lts := httptest.NewServer(lsrv)

	feng := engine.New(engine.Options{})
	fl, err := replication.NewFollower(replication.FollowerOptions{
		Engine:       feng,
		Leader:       ld.Addr(),
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := New(feng)
	fsrv.SetReplication(fl)
	fts := httptest.NewServer(fsrv)

	p := &replPair{
		leaderTS: lts, followerTS: fts,
		leaderEng: leng, follEng: feng,
		leader: ld, follower: fl,
	}
	t.Cleanup(func() {
		fts.Close()
		lts.Close()
		_ = fl.Close()
		_ = ld.Close()
		_ = feng.Close()
		_ = leng.Close()
	})
	return p
}

func httpImageOf(t *testing.T, eng *engine.Engine, name string) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := eng.WithGraph(name, func(g *graph.Graph) error {
		return storage.WriteGraphImage(&buf, g)
	})
	if err != nil {
		t.Fatalf("image %q: %v", name, err)
	}
	return buf.Bytes()
}

// waitReplicated blocks until the follower's graph set and every graph
// image are byte-identical to the leader's — the "same applied offset"
// precondition for the equivalence assertions.
func (p *replPair) waitReplicated(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if p.converged(t) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower did not converge: leader=%v follower=%v",
		p.leaderEng.ListGraphs(), p.follEng.ListGraphs())
}

func (p *replPair) converged(t *testing.T) bool {
	t.Helper()
	lg, fg := p.leaderEng.ListGraphs(), p.follEng.ListGraphs()
	if len(lg) != len(fg) {
		return false
	}
	for i := range lg {
		if lg[i] != fg[i] {
			return false
		}
	}
	for _, name := range lg {
		if !bytes.Equal(httpImageOf(t, p.leaderEng, name), httpImageOf(t, p.follEng, name)) {
			return false
		}
	}
	return true
}

// stripTiming re-marshals a response body with its timing fields
// removed: elapsed_us is wall-clock noise, everything else must be
// byte-identical (encoding/json sorts map keys, so the re-marshal is
// deterministic).
func stripTiming(t *testing.T, body []byte, drop ...string) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("response not JSON: %v (%s)", err, body)
	}
	delete(m, "elapsed_us")
	for _, k := range drop {
		delete(m, k)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// envelope decodes the uniform error body.
type errEnvelope struct {
	Error struct {
		Code    string         `json:"code"`
		Message string         `json:"message"`
		Details map[string]any `json:"details"`
	} `json:"error"`
}

func TestFollowerServesIdenticalReads(t *testing.T) {
	p := newReplPair(t)
	uploadPaperGraph(t, p.leaderTS)

	// A few mutations past the snapshot so replay is exercised too.
	for i := 0; i < 5; i++ {
		op := "insert"
		if i%2 == 1 {
			op = "delete"
		}
		resp, body := do(t, "POST", p.leaderTS.URL+"/api/graphs/paper/updates",
			fmt.Sprintf(`{"ops": [{"op": %q, "from": 0, "to": 1}]}`, op))
		if resp.StatusCode != 200 {
			t.Fatalf("leader update %d: %d %s", i, resp.StatusCode, body)
		}
	}
	p.waitReplicated(t)

	// Queries answer byte-identically at the same applied offset.
	q := map[string]any{"dsl": dataset.PaperQueryDSL}
	lresp, lbody := do(t, "POST", p.leaderTS.URL+"/api/v1/graphs/paper/query", q)
	fresp, fbody := do(t, "POST", p.followerTS.URL+"/api/v1/graphs/paper/query", q)
	if lresp.StatusCode != 200 || fresp.StatusCode != 200 {
		t.Fatalf("query: leader %d %s / follower %d %s", lresp.StatusCode, lbody, fresp.StatusCode, fbody)
	}
	if !bytes.Equal(stripTiming(t, lbody), stripTiming(t, fbody)) {
		t.Fatalf("query results diverge:\nleader:   %s\nfollower: %s", lbody, fbody)
	}

	// The second follower query is served from its result cache (source
	// flips to "cache") and must not change the answer.
	_, cached := do(t, "POST", p.followerTS.URL+"/api/v1/graphs/paper/query", q)
	if !bytes.Contains(cached, []byte(`"source":"cache"`)) {
		t.Fatalf("second follower query missed the cache: %s", cached)
	}
	if !bytes.Equal(stripTiming(t, cached, "source"), stripTiming(t, fbody, "source")) {
		t.Fatalf("cached follower query diverges:\nfirst:  %s\ncached: %s", fbody, cached)
	}

	// Plain reads agree byte-for-byte.
	for _, path := range []string{"/api/v1/graphs/paper", "/api/v1/graphs/paper/stats", "/api/v1/graphs/paper/dot"} {
		_, lb := do(t, "GET", p.leaderTS.URL+path, nil)
		_, fb := do(t, "GET", p.followerTS.URL+path, nil)
		if !bytes.Equal(lb, fb) {
			t.Fatalf("%s diverges:\nleader:   %s\nfollower: %s", path, lb, fb)
		}
	}
}

func TestFollowerRejectsWrites(t *testing.T) {
	p := newReplPair(t)
	uploadPaperGraph(t, p.leaderTS)
	p.waitReplicated(t)

	writes := []struct {
		method, path string
		body         any
	}{
		{"POST", "/api/v1/graphs/paper/updates", `{"ops": [{"op": "insert", "from": 0, "to": 1}]}`},
		{"POST", "/api/v1/graphs/paper/nodes", `{"label": "SA"}`},
		{"DELETE", "/api/v1/graphs/paper/nodes/0", nil},
		{"POST", "/api/v1/graphs/paper/nodes/0/attrs", `{"experience": {"kind":"int","i":9}}`},
		{"DELETE", "/api/v1/graphs/paper", nil},
		{"POST", "/api/v1/graphs/other", `{"generator": {"kind": "collab", "nodes": 4, "avg_degree": 1}}`},
	}
	for _, wr := range writes {
		resp, body := do(t, wr.method, p.followerTS.URL+wr.path, wr.body)
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s on follower: got %d %s, want 403", wr.method, wr.path, resp.StatusCode, body)
		}
		var env errEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("%s %s envelope: %v (%s)", wr.method, wr.path, err, body)
		}
		if env.Error.Code != "read_only" {
			t.Fatalf("%s %s code = %q, want read_only (%s)", wr.method, wr.path, env.Error.Code, body)
		}
		if leader, _ := env.Error.Details["leader"].(string); leader != p.leader.Addr() {
			t.Fatalf("%s %s details.leader = %q, want %q", wr.method, wr.path, leader, p.leader.Addr())
		}
	}

	// Reads on the same routes' graph keep working throughout.
	if resp, body := do(t, "GET", p.followerTS.URL+"/api/v1/graphs/paper", nil); resp.StatusCode != 200 {
		t.Fatalf("follower read after rejections: %d %s", resp.StatusCode, body)
	}
}

func TestFollowerStreamsReplicatedEvents(t *testing.T) {
	p := newReplPair(t)
	uploadPaperGraph(t, p.leaderTS)
	p.waitReplicated(t)

	// Subscriptions are server-local read-side state: creating one on a
	// follower is allowed and its events are driven by replicated applies.
	id, eventsURL := createSub(t, p.followerTS.URL, map[string]any{"dsl": dataset.PaperQueryDSL, "k": 2})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", p.followerTS.URL+eventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("follower stream: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	frames := make(chan sseFrame, 16)
	go readSSE(t, resp, frames)

	next := func() sseFrame {
		select {
		case fr, ok := <-frames:
			if !ok {
				t.Fatal("stream ended early")
			}
			return fr
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for SSE frame")
		}
		panic("unreachable")
	}

	if fr := next(); fr.event != "snapshot" {
		t.Fatalf("first frame = %q, want snapshot", fr.event)
	}

	// A leader-side write must surface on the follower's stream once the
	// record replicates — no follower-side mutation involved. E1 is the
	// paper's Example 3 insertion, which grows the match relation.
	_, pq := dataset.PaperGraph()
	e1 := dataset.E1(pq)
	if resp, body := do(t, "POST", p.leaderTS.URL+"/api/graphs/paper/updates",
		fmt.Sprintf(`{"ops": [{"op": "insert", "from": %d, "to": %d}]}`, e1.From, e1.To)); resp.StatusCode != 200 {
		t.Fatalf("leader update: %d %s", resp.StatusCode, body)
	}
	fr := next()
	if fr.event != "delta" {
		t.Fatalf("post-replication frame = %q, want delta", fr.event)
	}

	// The follower's delta must match what the leader publishes for the
	// same record: one node added under SD.
	var delta struct {
		Added map[string][]int64 `json:"added"`
	}
	if err := json.Unmarshal([]byte(fr.data), &delta); err != nil {
		t.Fatal(err)
	}
	if len(delta.Added["SD"]) != 1 {
		t.Fatalf("replicated delta = %s", fr.data)
	}

	if resp, _ := do(t, "DELETE", p.followerTS.URL+"/api/graphs/paper/subscriptions/"+id, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unsubscribe on follower: %d", resp.StatusCode)
	}
}

func TestHealthzReportsReplication(t *testing.T) {
	p := newReplPair(t)
	uploadPaperGraph(t, p.leaderTS)
	p.waitReplicated(t)

	type health struct {
		Replication *struct {
			Role       string `json:"role"`
			Leader     string `json:"leader"`
			Connected  bool   `json:"connected"`
			LagRecords uint64 `json:"lag_records"`
		} `json:"replication"`
	}

	var lh health
	_, body := do(t, "GET", p.leaderTS.URL+"/healthz", nil)
	if err := json.Unmarshal(body, &lh); err != nil {
		t.Fatal(err)
	}
	if lh.Replication == nil || lh.Replication.Role != "leader" {
		t.Fatalf("leader healthz replication = %s", body)
	}

	// The follower should settle connected with zero lag.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var fh health
		_, body = do(t, "GET", p.followerTS.URL+"/healthz", nil)
		if err := json.Unmarshal(body, &fh); err != nil {
			t.Fatal(err)
		}
		if fh.Replication == nil || fh.Replication.Role != "follower" {
			t.Fatalf("follower healthz replication = %s", body)
		}
		if fh.Replication.Connected && fh.Replication.LagRecords == 0 {
			if fh.Replication.Leader != p.leader.Addr() {
				t.Fatalf("follower healthz leader = %q, want %q", fh.Replication.Leader, p.leader.Addr())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower healthz never settled: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Standalone nodes report no replication block at all.
	ts, _ := newTestServer(t)
	var sh health
	_, body = do(t, "GET", ts.URL+"/healthz", nil)
	if err := json.Unmarshal(body, &sh); err != nil {
		t.Fatal(err)
	}
	if sh.Replication != nil {
		t.Fatalf("standalone healthz has replication block: %s", body)
	}
}

func TestDebugReplicationEndpoint(t *testing.T) {
	p := newReplPair(t)
	uploadPaperGraph(t, p.leaderTS)
	p.waitReplicated(t)

	var ls replication.Status
	resp, body := do(t, "GET", p.leaderTS.URL+"/api/v1/debug/replication", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("leader debug: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ls); err != nil {
		t.Fatal(err)
	}
	if ls.Role != "leader" || ls.Addr != p.leader.Addr() {
		t.Fatalf("leader status = %s", body)
	}

	var fs replication.Status
	_, body = do(t, "GET", p.followerTS.URL+"/api/v1/debug/replication", nil)
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Role != "follower" || fs.Leader != p.leader.Addr() {
		t.Fatalf("follower status = %s", body)
	}

	// Standalone nodes answer with an explicit role instead of a 404.
	ts, _ := newTestServer(t)
	resp, body = do(t, "GET", ts.URL+"/api/v1/debug/replication", nil)
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"standalone"`)) {
		t.Fatalf("standalone debug: %d %s", resp.StatusCode, body)
	}
}

func TestPromoteEndpoint(t *testing.T) {
	p := newReplPair(t)
	uploadPaperGraph(t, p.leaderTS)
	p.waitReplicated(t)

	// Promoting a leader is a conflict.
	resp, body := do(t, "POST", p.leaderTS.URL+"/api/v1/admin/promote", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote leader: %d %s", resp.StatusCode, body)
	}

	// Promoting a standalone node is a conflict too.
	ts, _ := newTestServer(t)
	resp, body = do(t, "POST", ts.URL+"/api/v1/admin/promote", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote standalone: %d %s", resp.StatusCode, body)
	}

	// Promoting the follower makes it writable.
	resp, body = do(t, "POST", p.followerTS.URL+"/api/v1/admin/promote", nil)
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"promoted":true`)) {
		t.Fatalf("promote follower: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", p.followerTS.URL+"/api/v1/graphs/paper/nodes",
		`{"label": "SA", "attrs": {"experience": {"kind":"int","i":7}}}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("write after promote: %d %s", resp.StatusCode, body)
	}

	// The new leader reports its role.
	_, body = do(t, "GET", p.followerTS.URL+"/api/v1/debug/replication", nil)
	var st replication.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "leader" {
		t.Fatalf("role after promote = %s", body)
	}
}
