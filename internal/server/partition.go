package server

// Partition endpoints: build, inspect, and drop the edge-cut
// partitioning of a managed graph. While a partitioning is fresh, the
// engine routes shallow bounded queries through the partition-parallel
// plan automatically; the stats expose fragment balance, cut edges,
// ghost counts, and the cumulative boundary-exchange volume.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"expfinder/internal/api"
	"expfinder/internal/partition"
)

func (s *Server) buildPartitions(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.PartitionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.eng.PartitionGraph(name, partition.Options{
		Parts:    req.Parts,
		Strategy: partition.Strategy(req.Strategy),
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) partitionStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.eng.PartitionStats(r.PathValue("name"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) dropPartitions(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.DropPartitions(r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
