package server

// Replication surfaces: role/lag in /healthz, the full picture at
// GET /api/v1/debug/replication, and failover via
// POST /api/v1/admin/promote. The server does not care which side it is
// on — leaders and followers both implement replication.Source.

import (
	"errors"
	"net/http"

	"expfinder/internal/replication"
)

// SetReplication attaches the node's replication role (a Leader or a
// Follower) for health, debug, and promote to report against. Call it
// before the server starts serving (read without synchronization
// afterwards); standalone nodes skip it.
func (s *Server) SetReplication(src replication.Source) { s.repl = src }

// debugReplication serves GET /api/v1/debug/replication.
func (s *Server) debugReplication(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		writeJSON(w, http.StatusOK, map[string]any{"role": "standalone"})
		return
	}
	writeJSON(w, http.StatusOK, s.repl.Status())
}

// promote serves POST /api/v1/admin/promote: detach from the leader and
// start accepting writes. Promoting a standalone node or a leader is a
// conflict, not a no-op — the operator asked for a state change that
// cannot happen.
func (s *Server) promote(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		writeErr(w, http.StatusConflict, errors.New("replication not configured"))
		return
	}
	if err := s.repl.Promote(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "role": "leader"})
}
