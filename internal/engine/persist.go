package engine

// Durable persistence: the engine front-end of internal/wal. Mutation
// paths in engine.go append to the graph's write-ahead log while holding
// the graph's lock; this file owns the rest of the lifecycle — boot-time
// recovery, checkpoints (snapshot + log truncation), and shutdown.
//
// Recovery contract: Recover() registers every persisted graph at its
// exact pre-crash content and graph.Version() (a torn record at the log
// tail is dropped; everything before it survives), rebuilds ("re-arms")
// any distance index recorded in the graph's index metadata, and leaves
// continuous queries to their protocol — subscriptions are client
// handles that die with the process, and a reconnecting subscriber gets
// a fresh snapshot event via the existing overflow→snapshot resync path.

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"expfinder/internal/distindex"
	"expfinder/internal/stats"
	"expfinder/internal/wal"
)

// ErrNoPersistence reports a persistence operation on an engine without
// a configured wal.Manager.
var ErrNoPersistence = errors.New("engine: no persistence configured")

// GraphRecovery describes the outcome of recovering one persisted graph.
type GraphRecovery struct {
	Name    string `json:"name"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Version uint64 `json:"version"`
	// Records is how many WAL records were replayed on top of the
	// snapshot (zero for "snapshot with no WAL").
	Records int `json:"records"`
	// TornTail reports that a partial trailing record — a crash during an
	// append — was discarded.
	TornTail bool `json:"torn_tail,omitempty"`
	// IndexRebuilt reports that persisted index metadata was found and
	// the distance index was rebuilt over the recovered graph.
	IndexRebuilt bool `json:"index_rebuilt,omitempty"`
	// IndexErr is set when the graph recovered fine but its distance
	// index could not be rebuilt: the graph IS serving, only the
	// accelerator is missing (queries fall back to the direct plan).
	IndexErr string `json:"index_error,omitempty"`
	// StatsRestored reports that a persisted statistics snapshot matched
	// the recovered graph and was installed without a full recount; false
	// means the statistics were rebuilt from scratch (or are disabled).
	StatsRestored bool `json:"stats_restored,omitempty"`
	// Err is set when this graph could not be recovered (its files are
	// left untouched for inspection); other graphs still recover.
	Err string `json:"error,omitempty"`
}

// RecoverySummary reports per-graph recovery outcomes, sorted by name.
type RecoverySummary struct {
	Graphs []GraphRecovery `json:"graphs"`
}

// Failed returns the recoveries that errored.
func (s *RecoverySummary) Failed() []GraphRecovery {
	var out []GraphRecovery
	for _, g := range s.Graphs {
		if g.Err != "" {
			out = append(out, g)
		}
	}
	return out
}

// Recover replays every persisted graph (snapshot + surviving WAL
// records) into the engine. Call it at boot, before registering graphs
// under names that may have persisted state. A graph that fails to
// recover is reported in the summary and skipped — its files stay on
// disk untouched — so one corrupt graph never blocks the rest.
func (e *Engine) Recover() (*RecoverySummary, error) {
	pers := e.opts.Persistence
	if pers == nil {
		return nil, ErrNoPersistence
	}
	names, err := pers.GraphNames()
	if err != nil {
		return nil, fmt.Errorf("engine: list persisted graphs: %w", err)
	}
	sum := &RecoverySummary{}
	for _, name := range names {
		gr := GraphRecovery{Name: name}
		rec, err := pers.Recover(name)
		if err != nil {
			gr.Err = err.Error()
			sum.Graphs = append(sum.Graphs, gr)
			continue
		}
		// A persisted statistics snapshot that still matches the recovered
		// graph (same version, nodes, edges, consistent counts) skips the
		// registration recount; anything off falls back to a full rebuild.
		var st *stats.Graph
		if !e.opts.DisableStats && rec.Stats != nil {
			var snap stats.Snapshot
			if json.Unmarshal(rec.Stats, &snap) == nil {
				st = stats.Restore(rec.Graph, &snap)
			}
		}
		if err := e.registerWith(name, rec.Graph, st); err != nil {
			gr.Err = err.Error()
			sum.Graphs = append(sum.Graphs, gr)
			continue
		}
		gr.StatsRestored = st != nil
		gr.Nodes = rec.Graph.NumNodes()
		gr.Edges = rec.Graph.NumEdges()
		gr.Version = rec.Graph.Version()
		gr.Records = rec.Records
		gr.TornTail = rec.TornTail
		if rec.Index != nil {
			// Re-arm: rebuild over the recovered graph. The metadata's
			// build-time version may be stale relative to the replayed
			// state — rebuilding makes the index fresh either way, and
			// BuildIndex rewrites the metadata at the recovered version.
			if _, err := e.BuildIndex(name, distindex.Options{Landmarks: rec.Index.Landmarks}); err != nil {
				gr.IndexErr = err.Error()
			} else {
				gr.IndexRebuilt = true
			}
		}
		sum.Graphs = append(sum.Graphs, gr)
	}
	return sum, nil
}

// Checkpoint snapshots the named graph and truncates the WAL the
// snapshot covers. Queries proceed during the snapshot write's disk I/O
// only insofar as they already hold read locks — Checkpoint takes the
// graph's read lock, so it excludes writers but not readers.
func (e *Engine) Checkpoint(graphName string) error {
	pers := e.opts.Persistence
	if pers == nil {
		return ErrNoPersistence
	}
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	if err := pers.Checkpoint(graphName, mg.g); err != nil {
		return err
	}
	// Persist the statistics beside the snapshot so a restart restores
	// them instead of recounting. The snapshot call rebuilds first if
	// stale, so what lands on disk always describes the checkpointed
	// version exactly.
	if mg.st != nil {
		data, err := json.Marshal(mg.st.Snapshot(mg.g))
		if err != nil {
			return fmt.Errorf("engine: marshal stats snapshot: %w", err)
		}
		if err := pers.SetStatsSnapshot(graphName, data); err != nil {
			return fmt.Errorf("engine: persist stats snapshot: %w", err)
		}
	}
	return nil
}

// CheckpointAll checkpoints every managed graph, returning the first
// error after attempting all.
func (e *Engine) CheckpointAll() error {
	if e.opts.Persistence == nil {
		return ErrNoPersistence
	}
	var first error
	for _, name := range e.ListGraphs() {
		if err := e.Checkpoint(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PersistenceEnabled reports whether the engine has a durable log.
func (e *Engine) PersistenceEnabled() bool { return e.opts.Persistence != nil }

// PersistenceStats snapshots the log manager's counters and per-graph
// state.
func (e *Engine) PersistenceStats() (wal.Stats, error) {
	if e.opts.Persistence == nil {
		return wal.Stats{}, ErrNoPersistence
	}
	return e.opts.Persistence.Stats(), nil
}

// Close shuts the persistence subsystem down: it stops the background
// checkpointer, flushes and syncs every graph's log, and closes the
// manager. Without persistence it is a no-op, so callers can defer it
// unconditionally. Safe to call twice.
//
// Shutdown ordering with subscriptions: drain HTTP/SSE consumers first
// (subscriptions are in-memory client handles — they cannot outlive the
// process, and reconnecting subscribers resync via the snapshot-event
// path), then Close the engine so the final appended records are
// durable. Closing first would not lose data, but mutations racing the
// close would fail their durability hook and surface errors to clients
// that the drain would have answered cleanly.
func (e *Engine) Close() error {
	pers := e.opts.Persistence
	if pers == nil {
		return nil
	}
	e.closeOnce.Do(func() { close(e.persStop) })
	e.persWG.Wait()
	return pers.Close()
}

// checkpointLoop periodically checkpoints graphs whose WAL outgrew the
// configured threshold, bounding both recovery replay time and disk
// growth. The scan period is the manager's CheckpointInterval.
func (e *Engine) checkpointLoop() {
	defer e.persWG.Done()
	t := time.NewTicker(e.opts.Persistence.CheckpointInterval())
	defer t.Stop()
	for {
		select {
		case <-e.persStop:
			return
		case <-t.C:
			for _, name := range e.ListGraphs() {
				if e.opts.Persistence.NeedsCheckpoint(name) {
					// Best-effort: a failed checkpoint leaves the log
					// authoritative and will be retried next tick.
					_ = e.Checkpoint(name)
				}
			}
		}
	}
}
