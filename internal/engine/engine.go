// Package engine is ExpFinder's query engine: it manages named data
// graphs, evaluates (bounded) simulation queries with plan selection,
// ranks top-K experts, caches results, registers frequently issued queries
// for incremental maintenance, and routes evaluation through compressed
// graphs when one is available — the coordination described in §II of the
// paper.
//
// Evaluation pipeline for a query Q on graph G:
//
//  1. return the cached M(Q,G) if the cache holds one for G's current
//     version;
//  2. if Q is registered for incremental maintenance, read the maintained
//     relation;
//  3. if a fresh distance index is registered and the query has bounds
//     beyond 1, evaluate with the index-accelerated bounded-simulation
//     plan;
//  4. if a compressed graph Gc compatible with Q exists, evaluate on Gc
//     and expand;
//  5. otherwise evaluate directly — with the quadratic simulation
//     algorithm when every bound is 1, the cubic bounded-simulation
//     algorithm otherwise ("optimized query plans").
//
// Beyond one-shot queries, the engine hosts continuous queries
// (Subscribe): standing patterns whose match deltas stream to clients as
// updates are applied, maintained through internal/subscribe by the same
// per-graph mutation fan-out that keeps registered queries, compressed
// views, and distance indexes consistent.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"expfinder/internal/bsim"
	"expfinder/internal/cache"
	"expfinder/internal/compress"
	"expfinder/internal/distindex"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/match"
	"expfinder/internal/partition"
	"expfinder/internal/pattern"
	"expfinder/internal/rank"
	"expfinder/internal/simulation"
	"expfinder/internal/stats"
	"expfinder/internal/storage"
	"expfinder/internal/subscribe"
	"expfinder/internal/trace"
	"expfinder/internal/wal"
)

// Engine errors.
var (
	ErrGraphExists  = errors.New("engine: graph already exists")
	ErrNoGraph      = errors.New("engine: no such graph")
	ErrNotTracked   = errors.New("engine: query not registered")
	ErrIncompatible = errors.New("engine: compressed view incompatible with query")
	ErrNoIndex      = errors.New("engine: no distance index built")
)

// Plan names the algorithm selected for a query.
type Plan string

// Plans.
const (
	PlanSimulation Plan = "simulation"         // quadratic, all bounds 1
	PlanBounded    Plan = "bounded-simulation" // cubic
	// PlanIndexed is bounded simulation with support counters answered by
	// the graph's landmark distance index instead of per-candidate BFS.
	// Selected whenever a fresh index is registered and the query has
	// bounds beyond 1; the relation is identical to PlanBounded's.
	PlanIndexed Plan = "indexed-bounded-simulation"
	// PlanPartitioned is bounded simulation evaluated fragment-parallel
	// over the graph's edge-cut partitioning, with boundary deltas
	// exchanged between fragments to the global fixpoint. Selected ahead
	// of the indexed plan when a fresh partitioning exists and the
	// pattern's radius keeps fragment-local work dominant (no unbounded
	// edges, small max bound); the relation is identical to PlanBounded's.
	PlanPartitioned Plan = "partitioned-bounded-simulation"
)

// Source names where a query result came from.
type Source string

// Sources.
const (
	SourceCache       Source = "cache"
	SourceStore       Source = "store"
	SourceIncremental Source = "incremental"
	SourceCompressed  Source = "compressed"
	SourceIndexed     Source = "indexed"
	SourcePartitioned Source = "partitioned"
	SourceDirect      Source = "direct"
)

// Options configures an Engine.
type Options struct {
	// CacheSize bounds the result-graph and ranking memo maps (entries).
	// Default 128.
	CacheSize int
	// CacheBytes is the byte budget of the match-relation result cache,
	// accounted by relation footprint. <= 0 means cache.DefaultBudget.
	CacheBytes int64
	// Store, when set, persists saved graphs and results.
	Store *storage.Store
	// Parallelism bounds how many queries the engine executes
	// concurrently (QueryBatch, QueryAsync, and overlapping Query calls)
	// and how many workers the bounded-simulation inner loop may fan out
	// to. <= 0 means GOMAXPROCS. Results never depend on it.
	Parallelism int
	// Persistence, when set, makes every graph mutation durable: each
	// mutation appends to the graph's write-ahead log under the graph's
	// lock, a background checkpointer snapshots graphs whose logs have
	// grown, and boot-time Recover() replays snapshot+WAL back into the
	// engine. Call Close() on shutdown to flush the log, and Recover()
	// before registering graphs whose state should come back. See
	// internal/wal and docs/ARCHITECTURE.md ("Durability").
	Persistence *wal.Manager
	// DisableStats turns off online graph statistics (degree/label
	// histograms; see internal/stats). On by default — maintenance is
	// O(1) per mutated edge — this switch exists for the a10 bench
	// baseline arm and as an escape hatch.
	DisableStats bool
}

// Engine manages graphs and evaluates queries. Safe for concurrent use.
// Locking is sharded per graph: the engine lock guards only the name ->
// graph registry, and each managed graph carries its own RWMutex, so
// lock contention never crosses graph boundaries — an update on one
// graph never blocks queries on another at the lock level. The one
// cross-graph coupling is the shared execution pool: at most Parallelism
// queries compute at once, so under a saturated pool a query queues for
// a slot regardless of which graph it targets (tokens are only ever held
// while computing, so the pool always drains at compute speed).
type Engine struct {
	mu    sync.RWMutex // guards gs, the registry map, only
	opts  Options
	par   int
	cache *cache.Cache
	gs    map[string]*managed

	// sem holds one token per allowed concurrent query execution;
	// inflight counts executions holding a token so evaluate can split
	// the worker budget between inter- and intra-query parallelism.
	// waiting counts queries parked for a token — the pool's queue depth,
	// exported as a gauge by the serving tier.
	sem      chan struct{}
	inflight atomic.Int32
	waiting  atomic.Int32
	epochs   atomic.Uint64 // graph-registration counter, see managed.epoch

	// hub is the continuous-query registry (see Subscribe): every graph
	// mutation path fans match deltas out to its live subscriptions while
	// holding the graph's lock.
	hub *subscribe.Hub

	// Background checkpointer lifecycle (persistence only; see persist.go).
	persStop  chan struct{}
	persWG    sync.WaitGroup
	closeOnce sync.Once

	// Replication follower state (see replicate.go): while readOnly is
	// set every public mutation path rejects with ReadOnlyError naming
	// the leader; the replicated-apply paths bypass the guard.
	roMu     sync.RWMutex
	readOnly bool
	leader   string

	// rgCache memoizes result graphs alongside the relation cache: a cache
	// hit would otherwise pay the full result-graph reconstruction (one
	// bounded BFS per match), which dominates repeat-query latency.
	// Entries are immutable once built; eviction is wholesale when the map
	// outgrows the relation cache capacity.
	rgMu      sync.Mutex
	rgCache   map[cache.Key]*match.ResultGraph
	rankCache map[cache.Key][]rank.Ranked // full ranking, best-first
}

// managed is one registered graph with everything attached to it. Its
// mutex guards the graph, the compressed form, and the matcher registry;
// queries hold it for read, mutations for write. epoch is the engine-wide
// registration counter distinguishing this instance from any other graph
// ever registered under the same name.
type managed struct {
	mu       sync.RWMutex
	epoch    uint64
	removed  bool // set under mu by RemoveGraph; Subscribe re-checks it
	g        *graph.Graph
	comp     *compress.Compressed            // optional
	idx      *distindex.Index                // optional landmark distance index
	part     *partition.Partitioning         // optional edge-cut partitioning
	st       *stats.Graph                    // optional online graph statistics
	matchers map[string]*incremental.Matcher // pattern hash -> matcher
	queries  map[string]*pattern.Pattern     // pattern hash -> registered pattern

	// fp memoizes the graph's content fingerprint per version: computing
	// it is a full O(V+E) serialization, far too heavy to repeat on every
	// store-path check. Guarded by fpMu because queries computing it hold
	// mu only for read.
	fpMu      sync.Mutex
	fp        uint64
	fpVersion uint64
	fpValid   bool
}

// fingerprint returns the graph's memoized content fingerprint. The
// caller holds mg.mu (read or write), so the graph cannot change
// underneath the computation.
func (mg *managed) fingerprint() uint64 {
	v := mg.g.Version()
	mg.fpMu.Lock()
	defer mg.fpMu.Unlock()
	if !mg.fpValid || mg.fpVersion != v {
		mg.fp = storage.GraphFingerprint(mg.g)
		mg.fpVersion, mg.fpValid = v, true
	}
	return mg.fp
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		opts:      opts,
		par:       par,
		cache:     cache.New(opts.CacheBytes),
		gs:        map[string]*managed{},
		hub:       subscribe.NewHub(),
		sem:       make(chan struct{}, par),
		rgCache:   map[cache.Key]*match.ResultGraph{},
		rankCache: map[cache.Key][]rank.Ranked{},
	}
	if opts.Persistence != nil {
		e.persStop = make(chan struct{})
		e.persWG.Add(1)
		go e.checkpointLoop()
	}
	return e
}

// Parallelism reports the engine's effective worker bound.
func (e *Engine) Parallelism() int { return e.par }

// InflightQueries reports how many queries hold an execution token right
// now — the worker pool's occupancy (at most Parallelism).
func (e *Engine) InflightQueries() int { return int(e.inflight.Load()) }

// QueuedQueries reports how many queries are parked waiting for an
// execution token — the pool's queue depth.
func (e *Engine) QueuedQueries() int { return int(e.waiting.Load()) }

// lookup resolves a graph name to its managed entry. Callers lock the
// returned entry; the registry lock is not held on return, so the entry
// stays usable even if the graph is concurrently removed (the query then
// answers against the pre-removal snapshot).
func (e *Engine) lookup(graphName string) (*managed, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	mg, ok := e.gs[graphName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoGraph, graphName)
	}
	return mg, nil
}

// resultGraphFor returns the memoized result graph for (key, rel), building
// it on demand.
func (e *Engine) resultGraphFor(key cache.Key, g *graph.Graph, q *pattern.Pattern, rel *match.Relation) *match.ResultGraph {
	e.rgMu.Lock()
	if rg, ok := e.rgCache[key]; ok {
		e.rgMu.Unlock()
		return rg
	}
	e.rgMu.Unlock()
	rg := match.BuildResultGraph(g, q, rel)
	e.rgMu.Lock()
	capacity := e.opts.CacheSize
	if capacity <= 0 {
		capacity = 128
	}
	if len(e.rgCache) >= capacity {
		e.rgCache = map[cache.Key]*match.ResultGraph{}
	}
	e.rgCache[key] = rg
	e.rgMu.Unlock()
	return rg
}

// rankingFor returns the memoized full (best-first) ranking of the output
// node's matches, building it on demand. Callers slice off their top K; the
// shared slice is never mutated.
func (e *Engine) rankingFor(key cache.Key, rg *match.ResultGraph, q *pattern.Pattern, rel *match.Relation) []rank.Ranked {
	e.rgMu.Lock()
	if ranked, ok := e.rankCache[key]; ok {
		e.rgMu.Unlock()
		return ranked
	}
	e.rgMu.Unlock()
	ranked := rank.TopKWithResultGraph(rg, q, rel, 0) // 0 = rank all
	e.rgMu.Lock()
	capacity := e.opts.CacheSize
	if capacity <= 0 {
		capacity = 128
	}
	if len(e.rankCache) >= capacity {
		e.rankCache = map[cache.Key][]rank.Ranked{}
	}
	e.rankCache[key] = ranked
	e.rgMu.Unlock()
	return ranked
}

// AddGraph registers a graph under a name. The engine owns the graph from
// here on: all mutations must go through ApplyUpdates. With persistence
// enabled the graph's log is created first (an initial snapshot for
// non-empty graphs), so a name with leftover persisted state is rejected
// until it is either recovered (Recover) or dropped (RemoveGraph).
func (e *Engine) AddGraph(name string, g *graph.Graph) error {
	if err := e.writable(); err != nil {
		return err
	}
	return e.addGraph(name, g)
}

// addGraph is AddGraph without the read-only guard — the replica-install
// path registers leader-shipped graphs through it.
func (e *Engine) addGraph(name string, g *graph.Graph) error {
	e.mu.RLock()
	_, taken := e.gs[name]
	e.mu.RUnlock()
	if taken {
		return fmt.Errorf("%w: %q", ErrGraphExists, name)
	}
	if pers := e.opts.Persistence; pers != nil {
		if err := pers.Create(name, g); err != nil {
			return fmt.Errorf("engine: persist graph %q: %w", name, err)
		}
	}
	if err := e.register(name, g); err != nil {
		if pers := e.opts.Persistence; pers != nil {
			// The log was freshly created above; dropping it cannot touch
			// pre-existing state.
			_ = pers.Drop(name)
		}
		return err
	}
	return nil
}

// register inserts a graph into the registry (the non-durable half of
// AddGraph, also used by Recover, whose graphs are already attached to
// the log manager).
func (e *Engine) register(name string, g *graph.Graph) error {
	return e.registerWith(name, g, nil)
}

// registerWith is register with pre-built statistics — the recovery
// path restores them from a persisted snapshot instead of paying the
// full recount. A nil st builds fresh (unless stats are disabled).
func (e *Engine) registerWith(name string, g *graph.Graph, st *stats.Graph) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.gs[name]; ok {
		return fmt.Errorf("%w: %q", ErrGraphExists, name)
	}
	mg := &managed{
		epoch:    e.epochs.Add(1),
		g:        g,
		matchers: map[string]*incremental.Matcher{},
		queries:  map[string]*pattern.Pattern{},
	}
	if !e.opts.DisableStats {
		if st == nil {
			st = stats.NewGraph(g)
		}
		mg.st = st
	}
	e.gs[name] = mg
	return nil
}

// RemoveGraph drops a graph and everything attached to it. The registry
// delete is atomic with the existence check, and the persisted state is
// dropped right after: the WAL directory itself serializes re-creation
// (AddGraph's Create refuses while it exists), so the Drop can never hit
// a newer graph's state. If the on-disk drop fails, the registration is
// restored so the caller can retry — otherwise an undeletable log would
// be stranded for the next Recover() to resurrect.
func (e *Engine) RemoveGraph(name string) error {
	if err := e.writable(); err != nil {
		return err
	}
	return e.removeGraph(name)
}

// removeGraph is RemoveGraph without the read-only guard (the follower
// drops graphs the leader dropped).
func (e *Engine) removeGraph(name string) error {
	e.mu.Lock()
	mg, ok := e.gs[name]
	if !ok {
		e.mu.Unlock()
		// Not registered — but a graph whose recovery failed leaves its
		// files on disk with no registration. Removing it through the API
		// must still work, or the name is wedged until someone deletes
		// the directory by hand.
		if pers := e.opts.Persistence; pers != nil && pers.HasState(name) {
			if err := pers.Drop(name); err != nil {
				return fmt.Errorf("engine: drop persisted state %q: %w", name, err)
			}
			return nil
		}
		return fmt.Errorf("%w: %q", ErrNoGraph, name)
	}
	delete(e.gs, name)
	e.mu.Unlock()
	if pers := e.opts.Persistence; pers != nil {
		if err := pers.Drop(name); err != nil {
			e.mu.Lock()
			if _, taken := e.gs[name]; !taken {
				e.gs[name] = mg
			}
			e.mu.Unlock()
			return fmt.Errorf("engine: drop persisted state %q: %w", name, err)
		}
	}
	// Close live subscriptions (buffered events stay readable) under the
	// graph's write lock: a concurrent Subscribe that resolved the entry
	// before the registry delete either registered already — and is
	// closed here — or is still waiting for the lock and will see
	// `removed`, so no orphan subscription can outlive the graph.
	mg.mu.Lock()
	mg.removed = true
	e.hub.CloseGraph(name)
	mg.mu.Unlock()
	// Purge caches for memory hygiene. Correctness does not depend on
	// this: keys carry the managed epoch, so entries a still-in-flight
	// query re-inserts after this purge can never serve a graph later
	// re-registered under the same name.
	e.cache.InvalidateGraph(name)
	e.rgMu.Lock()
	for key := range e.rgCache {
		if key.GraphName == name {
			delete(e.rgCache, key)
		}
	}
	for key := range e.rankCache {
		if key.GraphName == name {
			delete(e.rankCache, key)
		}
	}
	e.rgMu.Unlock()
	return nil
}

// Graph returns the named graph for read-only use. The returned pointer
// is unsynchronized: the caller must not read it concurrently with
// engine mutations — use WithGraph for a read scope that excludes
// writers.
func (e *Engine) Graph(name string) (*graph.Graph, error) {
	mg, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	return mg.g, nil
}

// WithGraph runs fn with the named graph locked for read: fn may read
// the graph freely — no engine mutation runs concurrently — but must
// not retain it after returning, call engine methods on the same graph
// (self-deadlock with a waiting writer), or mutate it.
func (e *Engine) WithGraph(name string, fn func(*graph.Graph) error) error {
	mg, err := e.lookup(name)
	if err != nil {
		return err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return fn(mg.g)
}

// ListGraphs returns the names of managed graphs, sorted.
func (e *Engine) ListGraphs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.gs))
	for name := range e.gs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Result is the full answer to a query: the match relation, the result
// graph for visualization, the ranked top-K experts, and provenance.
type Result struct {
	Relation    *match.Relation
	ResultGraph *match.ResultGraph
	TopK        []rank.Ranked
	Plan        Plan
	Source      Source
	Elapsed     time.Duration
}

// Query evaluates q on the named graph and ranks the top k matches of the
// output node (k <= 0 ranks all). See QueryCtx for the cancellable form
// and QueryBatch/QueryAsync for concurrent dispatch.
func (e *Engine) Query(graphName string, q *pattern.Pattern, k int) (*Result, error) {
	return e.QueryCtx(context.Background(), graphName, q, k)
}

// queryLocked runs the evaluation pipeline. The caller holds mg.mu for
// read and an execution token. When ctx carries an active trace (see
// internal/trace) the pipeline emits an "engine.query" span with one
// child per stage; results are byte-identical with and without tracing.
func (e *Engine) queryLocked(ctx context.Context, graphName string, mg *managed, q *pattern.Pattern, k int, start time.Time) *Result {
	qctx, sp := trace.StartSpan(ctx, "engine.query")
	rel, source, plan := e.evaluate(qctx, graphName, mg, q)
	key := cache.Key{GraphName: graphName, Epoch: mg.epoch, GraphVersion: mg.g.Version(), PatternHash: q.Hash()}
	_, spRG := trace.StartSpan(qctx, "result_graph")
	rg := e.resultGraphFor(key, mg.g, q, rel)
	spRG.End()
	_, spRank := trace.StartSpan(qctx, "rank.topk")
	ranked := e.rankingFor(key, rg, q, rel)
	if k > 0 && k < len(ranked) {
		ranked = ranked[:k]
	}
	spRank.End()
	if sp != nil {
		sp.SetStr("graph", graphName)
		sp.SetStr("plan", string(plan))
		sp.SetStr("source", string(source))
		sp.SetStr("shape", patternShape(q))
		sp.SetInt("matches", int64(rel.Size()))
		if source != SourceCache {
			// Bytes the engine had to materialize (a cache hit reports its
			// size on the cache.lookup span instead) — the accounting
			// ledger's served-vs-computed split reads both.
			sp.SetInt("result_bytes", rel.ApproxBytes())
		}
		sp.SetInt("k", int64(k))
		sp.End()
	}
	return &Result{
		Relation:    rel,
		ResultGraph: rg,
		TopK:        append([]rank.Ranked(nil), ranked...),
		Plan:        plan,
		Source:      source,
		Elapsed:     time.Since(start),
	}
}

// evalWorkers is the intra-query worker budget: the full Parallelism for
// a lone query, split evenly when several queries are in flight so a
// batch does not oversubscribe the machine par-squared ways.
func (e *Engine) evalWorkers() int {
	inflight := int(e.inflight.Load())
	if inflight < 1 {
		inflight = 1
	}
	w := e.par / inflight
	if w < 1 {
		w = 1
	}
	return w
}

// evaluate runs the pipeline described in the package comment. Callers
// hold mg.mu for at least read. Trace spans (one per pipeline stage)
// are emitted only when ctx carries an active trace.
func (e *Engine) evaluate(ctx context.Context, graphName string, mg *managed, q *pattern.Pattern) (*match.Relation, Source, Plan) {
	plan := PlanBounded
	if q.IsPlainSimulation() {
		// Bound-1 obligations are adjacency scans; the index cannot beat
		// them, so plain-simulation queries never take the indexed plan.
		plan = PlanSimulation
	} else if mg.part != nil && mg.part.Fresh(mg.g) && partitionedWins(q) {
		// Shallow bounded patterns stay fragment-local: the partitioned
		// plan parallelizes the whole refinement, where the index only
		// accelerates individual reachability probes.
		plan = PlanPartitioned
	} else if mg.idx != nil && mg.idx.Fresh(mg.g) {
		plan = PlanIndexed
	}
	key := cache.Key{GraphName: graphName, Epoch: mg.epoch, GraphVersion: mg.g.Version(), PatternHash: q.Hash()}
	_, spCache := trace.StartSpan(ctx, "cache.lookup")
	cached, cachedBytes, hit := e.cache.GetSized(key)
	if spCache != nil {
		spCache.SetBool("hit", hit)
		if hit {
			spCache.SetInt("bytes", cachedBytes)
		}
		spCache.End()
	}
	if hit {
		return cached, SourceCache, plan
	}
	if m, ok := mg.matchers[q.Hash()]; ok {
		rel := m.Relation()
		e.cache.Put(key, rel)
		return rel, SourceIncremental, plan
	}
	// Results persisted to the store in a previous session are reusable as
	// long as the graph version (deterministic for a given mutation
	// history) still matches — and the content fingerprint too, since a
	// different graph registered under a recycled name can collide on
	// (name, version).
	if e.opts.Store != nil {
		_, spStore := trace.StartSpan(ctx, "store.lookup")
		rec, err := e.opts.Store.LoadResult(graphName, q.Hash())
		usable := err == nil && rec.GraphVersion == mg.g.Version() &&
			rec.NumPNodes == q.NumNodes() && rec.GraphFP == mg.fingerprint()
		if spStore != nil {
			spStore.SetBool("hit", usable)
			spStore.End()
		}
		if usable {
			rel := rec.Relation()
			e.cache.Put(key, rel)
			return rel, SourceStore, plan
		}
	}
	// The indexed and partitioned plans answer on the original graph and
	// take precedence over compressed routing (the quotient would
	// recompute the balls they already paid for, and the partitioning
	// does not describe the quotient).
	if plan != PlanIndexed && plan != PlanPartitioned && mg.comp != nil && e.compressedUsable(mg.comp, q, plan) {
		cctx, spComp := trace.StartSpan(ctx, "eval.compressed")
		var onQ *match.Relation
		if plan == PlanSimulation {
			onQ = simulation.Compute(mg.comp.Graph(), q)
		} else {
			onQ = bsim.ComputeParallelCtx(cctx, mg.comp.Graph(), q, e.evalWorkers())
		}
		rel := mg.comp.Decompress(onQ)
		spComp.End()
		e.cache.Put(key, rel)
		return rel, SourceCompressed, plan
	}
	var rel *match.Relation
	source := SourceDirect
	switch plan {
	case PlanSimulation:
		_, spSim := trace.StartSpan(ctx, "eval.simulation")
		rel = simulation.Compute(mg.g, q)
		spSim.End()
	case PlanIndexed:
		ictx, spIdx := trace.StartSpan(ctx, "eval.indexed")
		var before distindex.Stats
		if spIdx != nil {
			before = mg.idx.Stats()
		}
		rel = bsim.ComputeIndexedParallelCtx(ictx, mg.g, q, mg.idx, e.evalWorkers())
		if spIdx != nil {
			// Counter deltas around this evaluation; exact when queries do
			// not overlap (always, in tests), approximate under concurrency.
			after := mg.idx.Stats()
			spIdx.SetInt("probes", int64(after.Queries-before.Queries))
			spIdx.SetInt("proved", int64(after.Proved-before.Proved))
			spIdx.SetInt("refuted", int64(after.Refuted-before.Refuted))
			spIdx.SetInt("fallbacks", int64(after.Fallbacks-before.Fallbacks))
			spIdx.End()
		}
		source = SourceIndexed
	case PlanPartitioned:
		pctx, spPart := trace.StartSpan(ctx, "eval.partitioned")
		var st partition.EvalStats
		var err error
		rel, st, err = partition.EvalCtx(pctx, mg.g, q, mg.part, partition.Bounded)
		if spPart != nil {
			spPart.SetInt("supersteps", int64(st.Supersteps))
			spPart.SetInt("messages", int64(st.Messages))
			spPart.SetInt("removals", int64(st.Removals))
			spPart.SetBool("fallback", err != nil)
			spPart.End()
		}
		if err != nil {
			// Unreachable while routing gates on Fresh under the graph's
			// lock; answer exactly anyway rather than fail the query.
			bctx, spB := trace.StartSpan(ctx, "eval.bounded")
			rel = bsim.ComputeParallelCtx(bctx, mg.g, q, e.evalWorkers())
			spB.End()
			plan = PlanBounded
		} else {
			source = SourcePartitioned
		}
	default:
		bctx, spB := trace.StartSpan(ctx, "eval.bounded")
		rel = bsim.ComputeParallelCtx(bctx, mg.g, q, e.evalWorkers())
		spB.End()
	}
	e.cache.Put(key, rel)
	if e.opts.Store != nil {
		// Persistence is best-effort: a failed write must not fail the
		// query (the result is still correct and cached in memory).
		_ = e.opts.Store.SaveResult(storage.NewResultRecord(q, graphName, mg.g.Version(), mg.fingerprint(), rel))
	}
	return rel, source, plan
}

// compressedUsable reports whether the quotient can answer q exactly:
// the attribute view must cover q's predicates, and bounded plans require
// the bisimulation scheme.
func (e *Engine) compressedUsable(c *compress.Compressed, q *pattern.Pattern, plan Plan) bool {
	if !c.AttrView().Compatible(q) {
		return false
	}
	return plan == PlanSimulation || c.Scheme() == compress.Bisimulation
}

// CacheStats exposes result-cache counters.
func (e *Engine) CacheStats() cache.Stats { return e.cache.Stats() }

// RegisterQuery starts incremental maintenance for q on the named graph:
// subsequent ApplyUpdates calls repair its result instead of recomputing.
func (e *Engine) RegisterQuery(graphName string, q *pattern.Pattern) error {
	if err := q.Validate(); err != nil {
		return err
	}
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	h := q.Hash()
	if _, ok := mg.matchers[h]; ok {
		return nil // already registered
	}
	mg.matchers[h] = incremental.NewMatcher(mg.g, q)
	mg.queries[h] = q.Clone()
	return nil
}

// UnregisterQuery stops incremental maintenance for q.
func (e *Engine) UnregisterQuery(graphName string, q *pattern.Pattern) error {
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	h := q.Hash()
	if _, ok := mg.matchers[h]; !ok {
		return fmt.Errorf("%w: %s", ErrNotTracked, q.Node(q.Output()).Name)
	}
	delete(mg.matchers, h)
	delete(mg.queries, h)
	return nil
}

// RegisteredQueries returns the patterns under incremental maintenance.
func (e *Engine) RegisteredQueries(graphName string) ([]*pattern.Pattern, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	out := make([]*pattern.Pattern, 0, len(mg.queries))
	for _, q := range mg.queries {
		out = append(out, q.Clone())
	}
	return out, nil
}

// Delta describes how one registered query's matches changed.
type Delta struct {
	PatternHash string
	Added       []match.Pair
	Removed     []match.Pair
}

// ApplyUpdates applies edge updates to the named graph, repairs every
// registered query incrementally, maintains the compressed graph if
// present, and fans match deltas out to live subscriptions. It returns
// per-registered-query deltas; PushUpdates additionally reports the
// subscription fan-out count.
func (e *Engine) ApplyUpdates(graphName string, ops []incremental.Update) ([]Delta, error) {
	deltas, _, err := e.applyUpdates(context.Background(), graphName, ops)
	return deltas, err
}

// ApplyUpdatesCtx is ApplyUpdates threading ctx through to the WAL
// append, so traced update requests capture the durability cost (see
// internal/trace). Cancellation is NOT consulted: once called, the
// batch applies atomically exactly as ApplyUpdates would.
func (e *Engine) ApplyUpdatesCtx(ctx context.Context, graphName string, ops []incremental.Update) ([]Delta, error) {
	deltas, _, err := e.applyUpdates(ctx, graphName, ops)
	return deltas, err
}

func (e *Engine) applyUpdates(ctx context.Context, graphName string, ops []incremental.Update) ([]Delta, int, error) {
	if err := e.writable(); err != nil {
		return nil, 0, err
	}
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, 0, err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	// Apply to the graph once; consumers sync post-hoc.
	for i, op := range ops {
		var err error
		if op.Insert {
			err = mg.g.AddEdge(op.From, op.To)
		} else {
			err = mg.g.RemoveEdge(op.From, op.To)
		}
		if err != nil {
			// Roll back the prefix so graph and consumers stay consistent.
			for j := i - 1; j >= 0; j-- {
				if ops[j].Insert {
					_ = mg.g.RemoveEdge(ops[j].From, ops[j].To)
				} else {
					_ = mg.g.AddEdge(ops[j].From, ops[j].To)
				}
			}
			// The rollback left the content unchanged but advanced the
			// version; the index's labels still describe the graph
			// exactly, so keep it routed instead of letting the version
			// gap silently demote every query to the direct plan.
			if mg.idx != nil {
				mg.idx.RefreshVersion()
			}
			// Same reasoning for the partitioning: the edge set (and so
			// the boundary bookkeeping) is back to exactly what it was.
			if mg.part != nil {
				mg.part.RefreshVersion()
			}
			// And for the statistics: every histogram still counts the
			// restored content exactly.
			mg.st.RefreshVersion(mg.g)
			// Log the apply+rollback sequence as one record (best-effort —
			// the apply error is the one the caller must see). The content
			// is unchanged, but the rollback re-added edges by APPEND, so
			// adjacency ORDER changed; replaying the same op sequence
			// reproduces it exactly, keeping recovery byte-identical. A
			// bare version record would not.
			if pers := e.opts.Persistence; pers != nil && i > 0 {
				rb := make([]wal.Update, 0, 2*i)
				for j := 0; j < i; j++ {
					rb = append(rb, wal.Update{Insert: ops[j].Insert, From: ops[j].From, To: ops[j].To})
				}
				for j := i - 1; j >= 0; j-- {
					rb = append(rb, wal.Update{Insert: !ops[j].Insert, From: ops[j].From, To: ops[j].To})
				}
				_ = pers.LogUpdatesCtx(ctx, graphName, rb, mg.g.Version())
			}
			return nil, 0, fmt.Errorf("engine: apply op %d: %w", i, err)
		}
	}
	// The graph is final from here on; logBatch makes it durable. It runs
	// on every exit path past this point — including downstream sync
	// errors, where the graph HAS changed and skipping the log would let
	// the WAL silently diverge from live state (replay would then fail or,
	// worse, reconstruct a different graph).
	logBatch := func() error {
		pers := e.opts.Persistence
		if pers == nil || len(ops) == 0 {
			return nil
		}
		wops := make([]wal.Update, len(ops))
		for i, op := range ops {
			wops[i] = wal.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		return pers.LogUpdatesCtx(ctx, graphName, wops, mg.g.Version())
	}
	var deltas []Delta
	for h, m := range mg.matchers {
		added, removed, err := m.Sync(ops)
		if err != nil {
			_ = logBatch()
			return nil, 0, fmt.Errorf("engine: sync matcher %s: %w", h[:8], err)
		}
		deltas = append(deltas, Delta{PatternHash: h, Added: added, Removed: removed})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].PatternHash < deltas[j].PatternHash })
	if mg.comp != nil {
		cops := make([]compress.Update, len(ops))
		for i, op := range ops {
			cops[i] = compress.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		if err := mg.comp.Sync(cops); err != nil {
			_ = logBatch()
			return nil, 0, fmt.Errorf("engine: sync compressed graph: %w", err)
		}
	}
	if mg.idx != nil {
		iops := make([]distindex.Update, len(ops))
		for i, op := range ops {
			iops[i] = distindex.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		mg.idx.Sync(iops)
	}
	if mg.part != nil {
		pops := make([]partition.Update, len(ops))
		for i, op := range ops {
			pops[i] = partition.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		mg.part.Sync(pops)
	}
	if mg.st != nil {
		sops := make([]stats.Update, len(ops))
		for i, op := range ops {
			sops[i] = stats.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		mg.st.Sync(mg.g, sops)
	}
	// Fan out to live subscriptions last, so their deltas reflect the
	// same post-update graph every other consumer settled on (dirty
	// standing queries recompute here — the lazy invalidation path).
	notified := e.hub.HandleUpdates(graphName, mg.g, ops)
	if err := logBatch(); err != nil {
		return deltas, notified, fmt.Errorf("engine: log updates: %w", err)
	}
	return deltas, notified, nil
}

// AddNode inserts a node into a managed graph, keeping registered queries
// and the compressed form in sync.
func (e *Engine) AddNode(graphName, label string, attrs graph.Attrs) (graph.NodeID, error) {
	if err := e.writable(); err != nil {
		return graph.Invalid, err
	}
	mg, err := e.lookup(graphName)
	if err != nil {
		return graph.Invalid, err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	id := mg.g.AddNode(label, attrs)
	// The node exists from here on; log it on every exit path (see the
	// logBatch comment in applyUpdates — an unlogged AddNode would shift
	// every later replayed node id).
	logNode := func() error {
		if pers := e.opts.Persistence; pers != nil {
			return pers.LogAddNode(graphName, label, attrs, mg.g.Version())
		}
		return nil
	}
	for _, m := range mg.matchers {
		m.SyncNodeAdded(id)
	}
	if mg.comp != nil {
		if err := mg.comp.SyncNodeAdded(id); err != nil {
			_ = logNode()
			return id, fmt.Errorf("engine: sync compressed graph: %w", err)
		}
	}
	if mg.idx != nil {
		mg.idx.SyncNodeAdded(id)
	}
	if mg.part != nil {
		mg.part.SyncNodeAdded(id)
	}
	mg.st.SyncNodeAdded(mg.g, id)
	e.hub.HandleNodeAdded(graphName, mg.g, id)
	if err := logNode(); err != nil {
		return id, fmt.Errorf("engine: log add node: %w", err)
	}
	return id, nil
}

// RemoveNode removes a node and its incident edges from a managed graph,
// repairing registered queries and the compressed form incrementally.
func (e *Engine) RemoveNode(graphName string, id graph.NodeID) error {
	if err := e.writable(); err != nil {
		return err
	}
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	if !mg.g.Has(id) {
		return graph.ErrNoNode
	}
	// Removing a node shrinks reachability, which 2-hop labels cannot
	// repair in place: invalidate up front (queries stay exact through
	// the index's BFS fallback until a rebuild).
	if mg.idx != nil {
		mg.idx.Invalidate()
	}
	// Standing queries cannot repair through a disappearing node either:
	// mark them dirty and let the next update batch, flush, or subscribe
	// pay one full recompute for any burst of removals.
	e.hub.Invalidate(graphName)
	// Phase 1: detach incident edges through the ordinary edge-update
	// path, so cascades run while the graph is still consistent.
	var ops []incremental.Update
	for _, v := range mg.g.Out(id) {
		ops = append(ops, incremental.Delete(id, v))
	}
	for _, u := range mg.g.In(id) {
		if u != id { // self-loop already covered by the out pass
			ops = append(ops, incremental.Delete(u, id))
		}
	}
	// On any failure past the first edge removal, the graph HAS changed:
	// log exactly the detach prefix that applied, so the WAL tracks live
	// state even on the error paths (see the logBatch comment in
	// applyUpdates).
	detached := 0
	logDetached := func() {
		pers := e.opts.Persistence
		if pers == nil || detached == 0 {
			return
		}
		wops := make([]wal.Update, detached)
		for i := 0; i < detached; i++ {
			wops[i] = wal.Update{Insert: false, From: ops[i].From, To: ops[i].To}
		}
		_ = pers.LogUpdates(graphName, wops, mg.g.Version())
	}
	for _, op := range ops {
		if err := mg.g.RemoveEdge(op.From, op.To); err != nil {
			logDetached()
			return fmt.Errorf("engine: detach node %d: %w", id, err)
		}
		detached++
	}
	for _, m := range mg.matchers {
		if _, _, err := m.Sync(ops); err != nil {
			logDetached()
			return fmt.Errorf("engine: sync matcher: %w", err)
		}
	}
	if mg.comp != nil {
		cops := make([]compress.Update, len(ops))
		for i, op := range ops {
			cops[i] = compress.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		if err := mg.comp.Sync(cops); err != nil {
			logDetached()
			return fmt.Errorf("engine: sync compressed graph: %w", err)
		}
	}
	if mg.part != nil {
		// The detach ops clear the node's boundary bookkeeping; the
		// node itself leaves its fragment below.
		pops := make([]partition.Update, len(ops))
		for i, op := range ops {
			pops[i] = partition.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		mg.part.Sync(pops)
	}
	if mg.st != nil {
		// The detach ops walk the node down to degree zero in the
		// histograms; SyncNodeRemoved below drops the isolated node.
		sops := make([]stats.Update, len(ops))
		for i, op := range ops {
			sops[i] = stats.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		mg.st.Sync(mg.g, sops)
	}
	// Phase 2: the node is isolated; clear it everywhere and drop it.
	for _, m := range mg.matchers {
		m.SyncNodeRemoving(id)
	}
	if mg.comp != nil {
		if err := mg.comp.SyncNodeRemoving(id); err != nil {
			logDetached()
			return fmt.Errorf("engine: sync compressed graph: %w", err)
		}
	}
	if err := mg.g.RemoveNode(id); err != nil {
		logDetached()
		return err
	}
	// Versions moved past the syncs' snapshots; refresh them.
	for _, m := range mg.matchers {
		m.RefreshVersion()
	}
	if mg.comp != nil {
		mg.comp.RefreshVersion()
	}
	if mg.part != nil {
		mg.part.SyncNodeRemoved(id)
	}
	mg.st.SyncNodeRemoved(mg.g, id)
	// One record covers the whole removal (incident-edge detach included):
	// replay re-removes the node wholesale and restores this version.
	if pers := e.opts.Persistence; pers != nil {
		if err := pers.LogRemoveNode(graphName, id, mg.g.Version()); err != nil {
			return fmt.Errorf("engine: log remove node: %w", err)
		}
	}
	return nil
}

// SetNodeAttr updates one attribute of a node in a managed graph, keeping
// registered queries and the compressed form in sync (the predicate and
// signature changes are repaired incrementally).
func (e *Engine) SetNodeAttr(graphName string, id graph.NodeID, key string, v graph.Value) error {
	if err := e.writable(); err != nil {
		return err
	}
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	if err := mg.g.SetAttr(id, key, v); err != nil {
		return err
	}
	// The attribute is set from here on; log it on every exit path (see
	// the logBatch comment in applyUpdates).
	logAttr := func() error {
		if pers := e.opts.Persistence; pers != nil {
			return pers.LogSetAttr(graphName, id, key, v, mg.g.Version())
		}
		return nil
	}
	for _, m := range mg.matchers {
		if _, _, err := m.SyncAttrChanged(id); err != nil {
			_ = logAttr()
			return fmt.Errorf("engine: sync matcher: %w", err)
		}
	}
	if mg.comp != nil {
		if err := mg.comp.SyncAttrChanged(id); err != nil {
			_ = logAttr()
			return fmt.Errorf("engine: sync compressed graph: %w", err)
		}
	}
	if mg.idx != nil {
		// Attributes do not affect distances; just follow the version.
		mg.idx.SyncAttrChanged(id)
	}
	if mg.part != nil {
		// Attributes do not affect ownership either.
		mg.part.SyncAttrChanged(id)
	}
	// Attributes move no histogram; the stats just follow the version.
	mg.st.SyncAttrChanged(mg.g)
	// Standing queries take the lazy-recompute path (see RemoveNode).
	e.hub.Invalidate(graphName)
	if err := logAttr(); err != nil {
		return fmt.Errorf("engine: log attr update: %w", err)
	}
	return nil
}

// CompressGraph builds (or replaces) the compressed form of a graph.
func (e *Engine) CompressGraph(graphName string, scheme compress.Scheme, view compress.View) (*compress.Compressed, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	mg.comp = compress.CompressWithView(mg.g, scheme, view)
	return mg.comp, nil
}

// Compressed returns the current compressed form, if any.
func (e *Engine) Compressed(graphName string) (*compress.Compressed, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return mg.comp, nil
}

// DropCompression removes the compressed form.
func (e *Engine) DropCompression(graphName string) error {
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	mg.comp = nil
	return nil
}

// BuildIndex builds (or replaces) the landmark distance index of a graph
// and returns its stats. Evaluation routes bounded queries through the
// index as long as it stays fresh (edge insertions are repaired in place;
// deletions and node removals invalidate it until the next BuildIndex).
// The build holds the graph's write lock — queries queue behind it.
func (e *Engine) BuildIndex(graphName string, opts distindex.Options) (distindex.Stats, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return distindex.Stats{}, err
	}
	if opts.Workers <= 0 {
		opts.Workers = e.par
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	idx := distindex.Build(mg.g, opts)
	if pers := e.opts.Persistence; pers != nil {
		// Recovery re-arms the index from this metadata (see Recover).
		// Persist before installing: a metadata failure must not leave an
		// index serving now that silently vanishes at the next boot.
		meta := &wal.IndexMeta{Landmarks: opts.Landmarks, GraphVersion: mg.g.Version()}
		if err := pers.SetIndexMeta(graphName, meta); err != nil {
			return idx.Stats(), fmt.Errorf("engine: persist index metadata: %w", err)
		}
	}
	mg.idx = idx
	return mg.idx.Stats(), nil
}

// DropIndex removes the distance index.
func (e *Engine) DropIndex(graphName string) error {
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	if mg.idx == nil {
		return fmt.Errorf("%w: %q", ErrNoIndex, graphName)
	}
	// Clear the persisted metadata before the in-memory index: a failure
	// leaves both in place (consistent), never a dropped index that
	// recovery resurrects.
	if pers := e.opts.Persistence; pers != nil {
		if err := pers.SetIndexMeta(graphName, nil); err != nil {
			return fmt.Errorf("engine: clear index metadata: %w", err)
		}
	}
	mg.idx = nil
	return nil
}

// IndexStats returns the distance index's stats, or ErrNoIndex.
func (e *Engine) IndexStats(graphName string) (distindex.Stats, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return distindex.Stats{}, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	if mg.idx == nil {
		return distindex.Stats{}, fmt.Errorf("%w: %q", ErrNoIndex, graphName)
	}
	return mg.idx.Stats(), nil
}

// Index returns the current distance index, if any. Like Graph, the
// returned pointer is unsynchronized — callers must not use it
// concurrently with engine mutations.
func (e *Engine) Index(graphName string) (*distindex.Index, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	if mg.idx == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoIndex, graphName)
	}
	return mg.idx, nil
}

// SaveGraph persists a managed graph to the engine's store.
func (e *Engine) SaveGraph(graphName string, format storage.Format) error {
	if e.opts.Store == nil {
		return errors.New("engine: no store configured")
	}
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return e.opts.Store.SaveGraph(graphName, mg.g, format)
}

// LoadGraph loads a graph from the store and registers it.
func (e *Engine) LoadGraph(graphName string) error {
	if e.opts.Store == nil {
		return errors.New("engine: no store configured")
	}
	g, err := e.opts.Store.LoadGraph(graphName)
	if err != nil {
		return err
	}
	return e.AddGraph(graphName, g)
}
