package engine

// Replication support: the follower half of WAL shipping. A follower
// engine runs in read-only mode — every public mutation path rejects
// with ReadOnlyError naming the leader — while the replication client
// feeds it leader state through two bypass paths: InstallReplicaGraph
// (snapshot install) and ApplyReplicatedRecord (record replay). Records
// replay through the same decoded form as crash recovery
// (wal.Record.Apply is the reference semantics), but routed through the
// engine so every attached consumer — incremental matchers, compressed
// form, distance index, partitioning, live subscriptions — syncs
// exactly as it would on a native mutation. That is what lets a
// follower serve queries AND subscriptions with results byte-identical
// to the leader at the same applied offset.

import (
	"errors"
	"fmt"

	"expfinder/internal/compress"
	"expfinder/internal/distindex"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/partition"
	"expfinder/internal/stats"
	"expfinder/internal/wal"
)

// ErrReadOnly matches any ReadOnlyError via errors.Is — the sentinel
// the serving tier maps to the stable "read_only" error code.
var ErrReadOnly = errors.New("engine: read-only replication follower")

// ReadOnlyError rejects a write on a follower. Leader is the address
// writes should go to instead ("" when unknown, e.g. mid-reconnect).
type ReadOnlyError struct {
	Leader string
}

func (e *ReadOnlyError) Error() string {
	if e.Leader == "" {
		return "engine: read-only replication follower"
	}
	return fmt.Sprintf("engine: read-only replication follower (leader %s)", e.Leader)
}

// Is makes errors.Is(err, ErrReadOnly) hold for every ReadOnlyError.
func (e *ReadOnlyError) Is(target error) bool { return target == ErrReadOnly }

// SetReadOnly puts the engine in follower mode: public mutations fail
// with a ReadOnlyError naming the given leader address until
// ClearReadOnly. Reads, queries, subscriptions, and local accelerator
// builds (index, compression, partitioning) stay available.
func (e *Engine) SetReadOnly(leader string) {
	e.roMu.Lock()
	e.readOnly = true
	e.leader = leader
	e.roMu.Unlock()
}

// ClearReadOnly returns the engine to writable mode — the promote path.
func (e *Engine) ClearReadOnly() {
	e.roMu.Lock()
	e.readOnly = false
	e.leader = ""
	e.roMu.Unlock()
}

// ReadOnly reports whether the engine is in follower mode and, if so,
// the leader address writes are redirected to.
func (e *Engine) ReadOnly() (bool, string) {
	e.roMu.RLock()
	defer e.roMu.RUnlock()
	return e.readOnly, e.leader
}

// writable is the guard on every public mutation path.
func (e *Engine) writable() error {
	e.roMu.RLock()
	ro, leader := e.readOnly, e.leader
	e.roMu.RUnlock()
	if ro {
		return &ReadOnlyError{Leader: leader}
	}
	return nil
}

// GraphVersions snapshots every managed graph's current version — the
// follower's handshake payload (a graph's version IS its replication
// offset: records carry post-mutation versions, so "resume after V"
// and "resume after record offset" are the same statement).
func (e *Engine) GraphVersions() map[string]uint64 {
	e.mu.RLock()
	mgs := make(map[string]*managed, len(e.gs))
	for name, mg := range e.gs {
		mgs[name] = mg
	}
	e.mu.RUnlock()
	out := make(map[string]uint64, len(mgs))
	for name, mg := range mgs {
		mg.mu.RLock()
		out[name] = mg.g.Version()
		mg.mu.RUnlock()
	}
	return out
}

// InstallReplicaGraph replaces (or creates) a graph wholesale from a
// leader snapshot, bypassing the read-only guard. Any existing
// registration under the name is torn down first — subscriptions
// close, caches purge — because a snapshot install means the follower
// could not reach this state by record replay. If the follower has its
// own persistence, the snapshot is re-persisted locally so a follower
// crash recovers without the leader.
func (e *Engine) InstallReplicaGraph(name string, g *graph.Graph) error {
	if err := e.removeGraph(name); err != nil && !errors.Is(err, ErrNoGraph) {
		return fmt.Errorf("engine: clear replica %q: %w", name, err)
	}
	if pers := e.opts.Persistence; pers != nil {
		if pers.HasState(name) {
			// A failed earlier install can leave state with no registration.
			if err := pers.Drop(name); err != nil {
				return fmt.Errorf("engine: clear replica state %q: %w", name, err)
			}
		}
		if err := pers.Create(name, g); err != nil {
			return fmt.Errorf("engine: persist replica %q: %w", name, err)
		}
	}
	if err := e.register(name, g); err != nil {
		if pers := e.opts.Persistence; pers != nil {
			_ = pers.Drop(name)
		}
		return err
	}
	return nil
}

// DropReplicaGraph removes a graph the leader dropped, bypassing the
// read-only guard. Unknown names are a no-op (the follower may never
// have installed it).
func (e *Engine) DropReplicaGraph(name string) error {
	err := e.removeGraph(name)
	if errors.Is(err, ErrNoGraph) {
		return nil
	}
	return err
}

// ApplyReplicatedRecord replays one leader WAL record onto a follower
// graph, bypassing the read-only guard. The mutation applies exactly as
// wal.Record.Apply would in crash recovery — same ops, same version
// restore — but through the engine's consumer fan-out, so matchers,
// accelerators, and live subscriptions advance in lockstep. Records at
// or below the graph's version are skipped (ring replay after a
// reconnect legitimately overlaps). Errors mean the follower diverged
// from the leader's stream; the caller must resync by snapshot, not
// retry.
func (e *Engine) ApplyReplicatedRecord(name string, rec *wal.Record) error {
	mg, err := e.lookup(name)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	if rec.Post <= mg.g.Version() {
		return nil
	}
	if err := e.applyRecordLocked(name, mg, rec); err != nil {
		return err
	}
	// Restore the leader's exact post-mutation version, then let every
	// consumer's freshness tracking catch up to it (their syncs above saw
	// the pre-restore version).
	mg.g.RestoreVersion(rec.Post)
	for _, m := range mg.matchers {
		m.RefreshVersion()
	}
	if mg.comp != nil {
		mg.comp.RefreshVersion()
	}
	if mg.idx != nil && rec.Kind != wal.RecRemoveNode {
		mg.idx.RefreshVersion()
	}
	if mg.part != nil {
		mg.part.RefreshVersion()
	}
	// The stats synced with the pre-restore version too; re-stamp at the
	// leader's, or every follower stats read would pay a full recount.
	mg.st.RefreshVersion(mg.g)
	// Re-log to local persistence so a follower crash recovers to the
	// applied offset without re-fetching from the leader.
	if pers := e.opts.Persistence; pers != nil {
		if err := pers.LogRecord(name, rec); err != nil {
			return fmt.Errorf("engine: re-log replicated record: %w", err)
		}
	}
	return nil
}

// applyRecordLocked dispatches one record kind under mg.mu, mirroring
// the corresponding native mutation path's consumer fan-out.
func (e *Engine) applyRecordLocked(name string, mg *managed, rec *wal.Record) error {
	switch rec.Kind {
	case wal.RecUpdates:
		ops := make([]incremental.Update, len(rec.Ops))
		for i, op := range rec.Ops {
			ops[i] = incremental.Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		for i, op := range ops {
			var err error
			if op.Insert {
				err = mg.g.AddEdge(op.From, op.To)
			} else {
				err = mg.g.RemoveEdge(op.From, op.To)
			}
			if err != nil {
				return fmt.Errorf("engine: replicate op %d: %w", i, err)
			}
		}
		for h, m := range mg.matchers {
			if _, _, err := m.Sync(ops); err != nil {
				return fmt.Errorf("engine: replicate sync matcher %s: %w", h[:8], err)
			}
		}
		if mg.comp != nil {
			cops := make([]compress.Update, len(ops))
			for i, op := range ops {
				cops[i] = compress.Update{Insert: op.Insert, From: op.From, To: op.To}
			}
			if err := mg.comp.Sync(cops); err != nil {
				return fmt.Errorf("engine: replicate sync compressed graph: %w", err)
			}
		}
		if mg.idx != nil {
			iops := make([]distindex.Update, len(ops))
			for i, op := range ops {
				iops[i] = distindex.Update{Insert: op.Insert, From: op.From, To: op.To}
			}
			mg.idx.Sync(iops)
		}
		if mg.part != nil {
			pops := make([]partition.Update, len(ops))
			for i, op := range ops {
				pops[i] = partition.Update{Insert: op.Insert, From: op.From, To: op.To}
			}
			mg.part.Sync(pops)
		}
		if mg.st != nil {
			sops := make([]stats.Update, len(ops))
			for i, op := range ops {
				sops[i] = stats.Update{Insert: op.Insert, From: op.From, To: op.To}
			}
			mg.st.Sync(mg.g, sops)
		}
		e.hub.HandleUpdates(name, mg.g, ops)
	case wal.RecAddNode:
		id := mg.g.AddNode(rec.Label, rec.Attrs)
		for _, m := range mg.matchers {
			m.SyncNodeAdded(id)
		}
		if mg.comp != nil {
			if err := mg.comp.SyncNodeAdded(id); err != nil {
				return fmt.Errorf("engine: replicate sync compressed graph: %w", err)
			}
		}
		if mg.idx != nil {
			mg.idx.SyncNodeAdded(id)
		}
		if mg.part != nil {
			mg.part.SyncNodeAdded(id)
		}
		mg.st.SyncNodeAdded(mg.g, id)
		e.hub.HandleNodeAdded(name, mg.g, id)
	case wal.RecRemoveNode:
		if !mg.g.Has(rec.ID) {
			return fmt.Errorf("engine: replicate remove node %d: %w", rec.ID, graph.ErrNoNode)
		}
		// Mirror RemoveNode: invalidate what cannot repair, detach
		// incident edges through the edge-update path, then drop the node.
		if mg.idx != nil {
			mg.idx.Invalidate()
		}
		e.hub.Invalidate(name)
		var ops []incremental.Update
		for _, v := range mg.g.Out(rec.ID) {
			ops = append(ops, incremental.Delete(rec.ID, v))
		}
		for _, u := range mg.g.In(rec.ID) {
			if u != rec.ID {
				ops = append(ops, incremental.Delete(u, rec.ID))
			}
		}
		for _, op := range ops {
			if err := mg.g.RemoveEdge(op.From, op.To); err != nil {
				return fmt.Errorf("engine: replicate detach node %d: %w", rec.ID, err)
			}
		}
		for _, m := range mg.matchers {
			if _, _, err := m.Sync(ops); err != nil {
				return fmt.Errorf("engine: replicate sync matcher: %w", err)
			}
		}
		if mg.comp != nil {
			cops := make([]compress.Update, len(ops))
			for i, op := range ops {
				cops[i] = compress.Update{Insert: op.Insert, From: op.From, To: op.To}
			}
			if err := mg.comp.Sync(cops); err != nil {
				return fmt.Errorf("engine: replicate sync compressed graph: %w", err)
			}
		}
		if mg.part != nil {
			pops := make([]partition.Update, len(ops))
			for i, op := range ops {
				pops[i] = partition.Update{Insert: op.Insert, From: op.From, To: op.To}
			}
			mg.part.Sync(pops)
		}
		if mg.st != nil {
			sops := make([]stats.Update, len(ops))
			for i, op := range ops {
				sops[i] = stats.Update{Insert: op.Insert, From: op.From, To: op.To}
			}
			mg.st.Sync(mg.g, sops)
		}
		for _, m := range mg.matchers {
			m.SyncNodeRemoving(rec.ID)
		}
		if mg.comp != nil {
			if err := mg.comp.SyncNodeRemoving(rec.ID); err != nil {
				return fmt.Errorf("engine: replicate sync compressed graph: %w", err)
			}
		}
		if err := mg.g.RemoveNode(rec.ID); err != nil {
			return fmt.Errorf("engine: replicate remove node %d: %w", rec.ID, err)
		}
		if mg.part != nil {
			mg.part.SyncNodeRemoved(rec.ID)
		}
		mg.st.SyncNodeRemoved(mg.g, rec.ID)
	case wal.RecSetAttr:
		if err := mg.g.SetAttr(rec.ID, rec.Key, rec.Val); err != nil {
			return fmt.Errorf("engine: replicate set attr on node %d: %w", rec.ID, err)
		}
		for _, m := range mg.matchers {
			if _, _, err := m.SyncAttrChanged(rec.ID); err != nil {
				return fmt.Errorf("engine: replicate sync matcher: %w", err)
			}
		}
		if mg.comp != nil {
			if err := mg.comp.SyncAttrChanged(rec.ID); err != nil {
				return fmt.Errorf("engine: replicate sync compressed graph: %w", err)
			}
		}
		if mg.idx != nil {
			mg.idx.SyncAttrChanged(rec.ID)
		}
		if mg.part != nil {
			mg.part.SyncAttrChanged(rec.ID)
		}
		mg.st.SyncAttrChanged(mg.g)
		e.hub.Invalidate(name)
	case wal.RecVersion:
		// Version restore below is the whole mutation.
	default:
		return fmt.Errorf("engine: replicate unknown record kind %d", rec.Kind)
	}
	return nil
}
