package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"time"

	"expfinder/internal/distindex"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/storage"
	"expfinder/internal/testutil"
	"expfinder/internal/wal"
)

// durableEngine builds an engine persisting under dir.
func durableEngine(t *testing.T, dir string, opts wal.Options) *Engine {
	t.Helper()
	opts.Dir = dir
	m, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	e := New(Options{Persistence: m})
	t.Cleanup(func() { e.Close() })
	return e
}

func engineImage(t *testing.T, e *Engine, name string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WithGraph(name, func(g *graph.Graph) error {
		return storage.WriteGraphImage(&buf, g)
	}); err != nil {
		t.Fatalf("image %q: %v", name, err)
	}
	return buf.Bytes()
}

// churn drives a deterministic mutation mix through every engine
// mutation path (the ones the WAL must cover).
func churn(t *testing.T, e *Engine, name string, r *rand.Rand, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		g, err := e.Graph(name)
		if err != nil {
			t.Fatal(err)
		}
		nodes := g.Nodes()
		switch k := r.Intn(10); {
		case k < 6:
			if len(nodes) < 2 {
				continue
			}
			var ops []incremental.Update
			for j := 0; j < 1+r.Intn(5); j++ {
				u := nodes[r.Intn(len(nodes))]
				v := nodes[r.Intn(len(nodes))]
				if u == v {
					continue
				}
				if g.HasEdge(u, v) {
					ops = append(ops, incremental.Delete(u, v))
				} else {
					ops = append(ops, incremental.Insert(u, v))
				}
				break // one op per batch keeps every op valid
			}
			if len(ops) == 0 {
				continue
			}
			if _, err := e.ApplyUpdates(name, ops); err != nil {
				t.Fatalf("ApplyUpdates: %v", err)
			}
		case k < 8:
			label := testutil.Labels[r.Intn(len(testutil.Labels))]
			if _, err := e.AddNode(name, label, graph.Attrs{"experience": graph.Int(int64(r.Intn(10)))}); err != nil {
				t.Fatalf("AddNode: %v", err)
			}
		case k < 9:
			if len(nodes) < 4 {
				continue
			}
			if err := e.RemoveNode(name, nodes[r.Intn(len(nodes))]); err != nil {
				t.Fatalf("RemoveNode: %v", err)
			}
		default:
			if len(nodes) == 0 {
				continue
			}
			if err := e.SetNodeAttr(name, nodes[r.Intn(len(nodes))], "experience", graph.Int(int64(r.Intn(50)))); err != nil {
				t.Fatalf("SetNodeAttr: %v", err)
			}
		}
	}
}

func TestRecoverEmptyDataDir(t *testing.T) {
	e := durableEngine(t, t.TempDir(), wal.Options{})
	sum, err := e.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(sum.Graphs) != 0 {
		t.Fatalf("recovered %d graphs from an empty dir", len(sum.Graphs))
	}
	// The engine is fully usable afterwards.
	if err := e.AddGraph("g", testutil.RandomGraph(rand.New(rand.NewSource(1)), 10, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithoutPersistenceErrors(t *testing.T) {
	e := New(Options{})
	if _, err := e.Recover(); !errors.Is(err, ErrNoPersistence) {
		t.Fatalf("got %v, want ErrNoPersistence", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close without persistence: %v", err)
	}
}

func TestRecoverSnapshotWithNoWAL(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(3))
	e := durableEngine(t, dir, wal.Options{})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 25, 60)); err != nil {
		t.Fatal(err)
	}
	churn(t, e, "g", r, 40)
	if err := e.Checkpoint("g"); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	want := engineImage(t, e, "g")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Strip the (empty) post-checkpoint segment: pure snapshot on disk.
	gdir := filepath.Join(dir, "graphs", "g")
	entries, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	removedSeg := false
	for _, en := range entries {
		if strings.HasPrefix(en.Name(), "wal-") {
			if err := os.Remove(filepath.Join(gdir, en.Name())); err != nil {
				t.Fatal(err)
			}
			removedSeg = true
		}
	}
	if !removedSeg {
		t.Fatal("expected a segment to remove")
	}

	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Graphs) != 1 || sum.Graphs[0].Err != "" {
		t.Fatalf("recovery summary: %+v", sum.Graphs)
	}
	if sum.Graphs[0].Records != 0 {
		t.Fatalf("snapshot-only recovery replayed %d records", sum.Graphs[0].Records)
	}
	if !bytes.Equal(engineImage(t, e2, "g"), want) {
		t.Fatal("snapshot-only recovery diverged")
	}
}

func TestRecoverWALWithNoSnapshot(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, wal.Options{})
	// An empty graph gets no initial snapshot; every mutation below lives
	// only in the log.
	if err := e.AddGraph("g", graph.New(0)); err != nil {
		t.Fatal(err)
	}
	a, err := e.AddNode("g", "SA", graph.Attrs{"name": graph.String("Ann")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.AddNode("g", "SD", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyUpdates("g", []incremental.Update{incremental.Insert(a, b)}); err != nil {
		t.Fatal(err)
	}
	want := engineImage(t, e, "g")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "graphs", "g"))
	if err != nil {
		t.Fatal(err)
	}
	for _, en := range entries {
		if strings.HasPrefix(en.Name(), "snapshot-") {
			t.Fatalf("empty-graph create unexpectedly wrote %s", en.Name())
		}
	}

	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Graphs) != 1 || sum.Graphs[0].Err != "" || sum.Graphs[0].Records != 3 {
		t.Fatalf("recovery summary: %+v", sum.Graphs)
	}
	if !bytes.Equal(engineImage(t, e2, "g"), want) {
		t.Fatal("WAL-only recovery diverged")
	}
}

func TestRecoverRearmsIndexAfterStaleMetadata(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(5))
	e := durableEngine(t, dir, wal.Options{})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 40, 140)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildIndex("g", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	// Mutations after the build: deletions invalidate the live index and
	// leave the persisted metadata's GraphVersion stale relative to the
	// state recovery will replay.
	churn(t, e, "g", r, 60)
	q := testutil.RandomPattern(r, 3)
	wantRes, err := e.Query("g", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Graphs) != 1 || sum.Graphs[0].Err != "" {
		t.Fatalf("recovery summary: %+v", sum.Graphs)
	}
	if !sum.Graphs[0].IndexRebuilt {
		t.Fatal("stale index metadata was not re-armed")
	}
	st, err := e2.IndexStats("g")
	if err != nil {
		t.Fatalf("rebuilt index missing: %v", err)
	}
	if st.Nodes == 0 {
		t.Fatal("rebuilt index is empty")
	}
	// The rebuilt index must be fresh (deep-bound queries route through
	// it) and agree with the pre-restart engine byte for byte.
	res, err := e2.Query("g", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsPlainSimulation() && res.Plan != PlanIndexed {
		t.Fatalf("post-recovery plan %v, want %v", res.Plan, PlanIndexed)
	}
	if res.Relation.String() != wantRes.Relation.String() {
		t.Fatal("post-recovery relation diverged")
	}
}

func TestDroppedIndexStaysDroppedAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(9))
	e := durableEngine(t, dir, wal.Options{})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 20, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildIndex("g", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("g"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Graphs[0].IndexRebuilt {
		t.Fatal("dropped index came back after recovery")
	}
	if _, err := e2.IndexStats("g"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("IndexStats: %v, want ErrNoIndex", err)
	}
}

func TestEngineCrashRecoveryTornLog(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(21))
	e := durableEngine(t, dir, wal.Options{Fsync: wal.FsyncOff})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 30, 80)); err != nil {
		t.Fatal(err)
	}
	churn(t, e, "g", r, 120)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	gdir := filepath.Join(dir, "graphs", "g")
	entries, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	var segPath string
	for _, en := range entries {
		if strings.HasPrefix(en.Name(), "wal-") {
			segPath = filepath.Join(gdir, en.Name())
		}
	}
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the log mid-record (any odd offset into the body is fine) and
	// recover: the engine must come back, just slightly behind.
	if err := os.Truncate(segPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Graphs) != 1 || sum.Graphs[0].Err != "" {
		t.Fatalf("recovery summary: %+v", sum.Graphs)
	}
	if !sum.Graphs[0].TornTail {
		t.Fatal("mid-record truncation not reported as a torn tail")
	}
	// The recovered engine accepts new work and round-trips again.
	churn(t, e2, "g", rand.New(rand.NewSource(22)), 20)
	want := engineImage(t, e2, "g")
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := durableEngine(t, dir, wal.Options{})
	if _, err := e3.Recover(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(engineImage(t, e3, "g"), want) {
		t.Fatal("post-torn-recovery state lost on the next restart")
	}
}

func TestRecoverRestoresExactVersionForStoredResults(t *testing.T) {
	dir := t.TempDir()
	storeDir := t.TempDir()
	r := rand.New(rand.NewSource(31))
	store, err := storage.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Persistence: m, Store: store})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 30, 90)); err != nil {
		t.Fatal(err)
	}
	churn(t, e, "g", r, 30)
	q := testutil.RandomPattern(r, 3)
	if _, err := e.Query("g", q, 3); err != nil { // persists the result record
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// A recovered graph re-enters at its exact version + fingerprint, so
	// the stored result is reusable across the restart — the strongest
	// observable proof that versions survive recovery.
	m2, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	store2, err := storage.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{Persistence: m2, Store: store2})
	defer e2.Close()
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	res, err := e2.Query("g", q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceStore {
		t.Fatalf("post-recovery source %v, want %v (version/fingerprint mismatch)", res.Source, SourceStore)
	}
}

func TestAddGraphConflictsWithPersistedState(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, wal.Options{})
	g := graph.New(0)
	g.AddNode("SA", nil)
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Un-recovered leftover state blocks silent clobbering...
	e2 := durableEngine(t, dir, wal.Options{})
	if err := e2.AddGraph("g", graph.New(0)); err == nil {
		t.Fatal("AddGraph clobbered persisted state without Recover")
	}
	// ...Recover registers it, after which the name is taken as usual...
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := e2.AddGraph("g", graph.New(0)); !errors.Is(err, ErrGraphExists) {
		t.Fatalf("AddGraph after recover: %v, want ErrGraphExists", err)
	}
	// ...and RemoveGraph frees both the registry slot and the disk state.
	if err := e2.RemoveGraph("g"); err != nil {
		t.Fatal(err)
	}
	if err := e2.AddGraph("g", graph.New(0)); err != nil {
		t.Fatalf("AddGraph after remove: %v", err)
	}
}

func TestRemovedGraphDoesNotComeBack(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, wal.Options{})
	g := graph.New(0)
	g.AddNode("SA", nil)
	if err := e.AddGraph("keep", g.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := e.AddGraph("gone", g.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveGraph("gone"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Graphs) != 1 || sum.Graphs[0].Name != "keep" {
		t.Fatalf("recovered %+v, want only %q", sum.Graphs, "keep")
	}
}

func TestCheckpointLoopTriggers(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(51))
	e := durableEngine(t, dir, wal.Options{
		CheckpointBytes:    128,
		CheckpointInterval: 10 * time.Millisecond,
	})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 20, 40)); err != nil {
		t.Fatal(err)
	}
	churn(t, e, "g", r, 80)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := e.PersistenceStats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Checkpoints >= 2 { // create's initial snapshot counts as one
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never fired: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRolledBackBatchKeepsRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, wal.Options{})
	g := graph.New(0)
	a := g.AddNode("SA", nil)
	b := g.AddNode("SD", nil)
	c := g.AddNode("BA", nil)
	d := g.AddNode("ST", nil)
	for _, v := range []graph.NodeID{b, c, d} {
		if err := g.AddEdge(a, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	// A batch whose second op fails: the applied Delete(a,b) is rolled
	// back by APPEND, so out[a] ends [d,c,b] — content unchanged, order
	// not. Recovery must reproduce that order (the image codec
	// serializes adjacency order), so the rollback may not be logged as
	// a bare version bump.
	_, err := e.ApplyUpdates("g", []incremental.Update{
		incremental.Delete(a, b),
		incremental.Delete(a, graph.NodeID(99)), // fails: no such node
	})
	if err == nil {
		t.Fatal("batch with an invalid op unexpectedly succeeded")
	}
	live := engineImage(t, e, "g")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := durableEngine(t, dir, wal.Options{})
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(engineImage(t, e2, "g"), live) {
		t.Fatal("live and recovered images diverge after a rolled-back batch")
	}
}

func TestRemoveGraphClearsUnrecoveredState(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(61))
	e := durableEngine(t, dir, wal.Options{Fsync: wal.FsyncOff, SegmentBytes: 256})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 20, 40)); err != nil {
		t.Fatal(err)
	}
	churn(t, e, "g", r, 60)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a middle segment so recovery fails and the graph ends up
	// on disk but unregistered.
	gdir := filepath.Join(dir, "graphs", "g")
	entries, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, en := range entries {
		if strings.HasPrefix(en.Name(), "wal-") && strings.HasSuffix(en.Name(), ".seg") {
			segs = append(segs, en.Name())
		}
	}
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments to corrupt a middle one, got %d", len(segs))
	}
	mid := filepath.Join(gdir, segs[0])
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed()) != 1 {
		t.Fatalf("expected one failed recovery, got %+v", sum.Graphs)
	}
	// The name must not be wedged: RemoveGraph clears the on-disk state
	// even though nothing is registered, after which the name is free.
	if err := e2.RemoveGraph("g"); err != nil {
		t.Fatalf("RemoveGraph of unrecovered state: %v", err)
	}
	if err := e2.RemoveGraph("g"); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("second RemoveGraph: %v, want ErrNoGraph", err)
	}
	if err := e2.AddGraph("g", testutil.RandomGraph(r, 5, 8)); err != nil {
		t.Fatalf("AddGraph after clearing wedged state: %v", err)
	}
}
