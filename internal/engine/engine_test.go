package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"expfinder/internal/bsim"
	"expfinder/internal/compress"
	"expfinder/internal/dataset"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/pattern"
	"expfinder/internal/storage"
	"expfinder/internal/testutil"
)

func newPaperEngine(t *testing.T) (*Engine, dataset.People) {
	t.Helper()
	e := New(Options{})
	g, p := dataset.PaperGraph()
	if err := e.AddGraph("paper", g); err != nil {
		t.Fatal(err)
	}
	return e, p
}

func TestQueryEndToEnd(t *testing.T) {
	e, p := newPaperEngine(t)
	q := dataset.PaperQuery()
	res, err := e.Query("paper", q, 1)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Relation.Size() != 7 {
		t.Errorf("relation size = %d, want 7", res.Relation.Size())
	}
	if len(res.TopK) != 1 || res.TopK[0].Node != p.Bob {
		t.Errorf("top-1 = %v, want Bob", res.TopK)
	}
	if res.Plan != PlanBounded || res.Source != SourceDirect {
		t.Errorf("plan/source = %v/%v, want bounded/direct", res.Plan, res.Source)
	}
	if res.ResultGraph.NumNodes() != 7 {
		t.Errorf("result graph nodes = %d, want 7", res.ResultGraph.NumNodes())
	}
}

func TestQueryCacheHit(t *testing.T) {
	e, _ := newPaperEngine(t)
	q := dataset.PaperQuery()
	if _, err := e.Query("paper", q, 1); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("paper", q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCache {
		t.Errorf("second query source = %v, want cache", res.Source)
	}
	st := e.CacheStats()
	if st.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", st.Hits)
	}
}

func TestPlanSelection(t *testing.T) {
	e, _ := newPaperEngine(t)
	q, err := pattern.Parse("node SA [label=SA] output\nnode GD [label=GD]\nedge SA -> GD bound 1\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanSimulation {
		t.Errorf("all-bounds-1 plan = %v, want simulation", res.Plan)
	}
}

func TestRegisteredQueryServesIncrementally(t *testing.T) {
	e, p := newPaperEngine(t)
	q := dataset.PaperQuery()
	if err := e.RegisterQuery("paper", q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceIncremental {
		t.Errorf("source = %v, want incremental", res.Source)
	}
	// Apply e1; the delta must be (SD, Fred).
	e1 := dataset.E1(p)
	deltas, err := e.ApplyUpdates("paper", []incremental.Update{incremental.Insert(e1.From, e1.To)})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || len(deltas[0].Added) != 1 || deltas[0].Added[0].Node != p.Fred {
		t.Errorf("deltas = %+v, want Fred added", deltas)
	}
	// Post-update query must reflect the new relation.
	res, err = e.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := q.Lookup("SD")
	if !res.Relation.Has(sd, p.Fred) {
		t.Error("Fred missing after update")
	}
	g, _ := e.Graph("paper")
	if !res.Relation.Equal(bsim.Compute(g, q)) {
		t.Error("engine relation diverged from recompute")
	}
}

func TestCompressedRouting(t *testing.T) {
	e, _ := newPaperEngine(t)
	q := dataset.PaperQuery()
	want, err := e.Query("paper", q, 0) // direct, cached under current version
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CompressGraph("paper", compress.Bisimulation, compress.View{"experience"}); err != nil {
		t.Fatal(err)
	}
	// Evict cache effect by re-adding the same query under a new engine to
	// force the compressed path.
	e2 := New(Options{})
	g2, _ := dataset.PaperGraph()
	if err := e2.AddGraph("paper", g2); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.CompressGraph("paper", compress.Bisimulation, compress.View{"experience"}); err != nil {
		t.Fatal(err)
	}
	res, err := e2.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCompressed {
		t.Errorf("source = %v, want compressed", res.Source)
	}
	if !res.Relation.Equal(want.Relation) {
		t.Error("compressed result differs from direct result")
	}
}

func TestIncompatibleViewFallsBackToDirect(t *testing.T) {
	e, _ := newPaperEngine(t)
	// Label-only view cannot answer the paper query (tests experience).
	if _, err := e.CompressGraph("paper", compress.Bisimulation, compress.View{}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("paper", dataset.PaperQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceDirect {
		t.Errorf("source = %v, want direct fallback", res.Source)
	}
	if res.Relation.Size() != 7 {
		t.Errorf("fallback relation size = %d, want 7", res.Relation.Size())
	}
}

func TestSimEqQuotientRejectedForBoundedPlan(t *testing.T) {
	e, _ := newPaperEngine(t)
	if _, err := e.CompressGraph("paper", compress.SimulationEquivalence, nil); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("paper", dataset.PaperQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceDirect {
		t.Errorf("bounded query on sim-eq quotient: source = %v, want direct", res.Source)
	}
}

func TestApplyUpdatesMaintainsCompressed(t *testing.T) {
	e, p := newPaperEngine(t)
	q := dataset.PaperQuery()
	if _, err := e.CompressGraph("paper", compress.Bisimulation, compress.View{"experience"}); err != nil {
		t.Fatal(err)
	}
	e1 := dataset.E1(p)
	if _, err := e.ApplyUpdates("paper", []incremental.Update{incremental.Insert(e1.From, e1.To)}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCompressed {
		t.Errorf("source = %v, want compressed (maintained)", res.Source)
	}
	g, _ := e.Graph("paper")
	if !res.Relation.Equal(bsim.Compute(g, q)) {
		t.Error("maintained compressed result diverged")
	}
	sd, _ := q.Lookup("SD")
	if !res.Relation.Has(sd, p.Fred) {
		t.Error("Fred missing from maintained compressed result")
	}
}

func TestApplyUpdatesRollsBackOnError(t *testing.T) {
	e, p := newPaperEngine(t)
	g, _ := e.Graph("paper")
	before := g.NumEdges()
	// Second op fails (duplicate edge) -> first must be rolled back.
	_, err := e.ApplyUpdates("paper", []incremental.Update{
		incremental.Insert(p.Fred, p.Pat),
		incremental.Insert(p.Bob, p.Dan), // already exists
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if g.NumEdges() != before {
		t.Errorf("edges = %d after failed batch, want %d", g.NumEdges(), before)
	}
	if g.HasEdge(p.Fred, p.Pat) {
		t.Error("first op not rolled back")
	}
}

func TestGraphLifecycleErrors(t *testing.T) {
	e := New(Options{})
	g, _ := dataset.PaperGraph()
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if err := e.AddGraph("g", g); !errors.Is(err, ErrGraphExists) {
		t.Errorf("dup AddGraph err = %v", err)
	}
	if _, err := e.Query("nope", dataset.PaperQuery(), 0); !errors.Is(err, ErrNoGraph) {
		t.Errorf("missing graph Query err = %v", err)
	}
	if err := e.UnregisterQuery("g", dataset.PaperQuery()); !errors.Is(err, ErrNotTracked) {
		t.Errorf("UnregisterQuery err = %v", err)
	}
	if err := e.RemoveGraph("g"); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveGraph("g"); !errors.Is(err, ErrNoGraph) {
		t.Errorf("double RemoveGraph err = %v", err)
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	e, _ := newPaperEngine(t)
	q := pattern.New() // empty: invalid
	if _, err := e.Query("paper", q, 0); err == nil {
		t.Error("empty pattern accepted")
	}
	if err := e.RegisterQuery("paper", q); err == nil {
		t.Error("empty pattern registered")
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	e := New(Options{})
	r := rand.New(rand.NewSource(5))
	g := testutil.RandomGraph(r, 60, 180)
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	q := testutil.RandomPattern(rand.New(rand.NewSource(6)), 3)
	if err := e.RegisterQuery("g", q); err != nil {
		t.Fatal(err)
	}
	// Pre-generate valid ops on a mirror so concurrent application cannot
	// conflict structurally.
	mirror := g.Clone()
	ops := testutil.RandomOps(rand.New(rand.NewSource(7)), mirror, 30)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, op := range ops {
			if _, err := e.ApplyUpdates("g", []incremental.Update{{Insert: op.Insert, From: op.From, To: op.To}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.Query("g", q, 5); err != nil {
					errCh <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Final state must agree with scratch recomputation.
	res, err := e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	gg, _ := e.Graph("g")
	if !res.Relation.Equal(bsim.Compute(gg, q)) {
		t.Error("post-concurrency relation diverged")
	}
}

func TestRegisteredQueriesListing(t *testing.T) {
	e, _ := newPaperEngine(t)
	q := dataset.PaperQuery()
	if err := e.RegisterQuery("paper", q); err != nil {
		t.Fatal(err)
	}
	qs, err := e.RegisteredQueries("paper")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0].Hash() != q.Hash() {
		t.Errorf("registered queries = %d", len(qs))
	}
	// Registration is idempotent.
	if err := e.RegisterQuery("paper", q); err != nil {
		t.Fatal(err)
	}
	qs, _ = e.RegisteredQueries("paper")
	if len(qs) != 1 {
		t.Errorf("re-registration duplicated: %d", len(qs))
	}
}

func TestPersistedResultsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.PaperQuery()

	// Session 1: evaluate once; the result lands in the store.
	e1 := New(Options{Store: store})
	g1, _ := dataset.PaperGraph()
	if err := e1.AddGraph("paper", g1); err != nil {
		t.Fatal(err)
	}
	res, err := e1.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceDirect {
		t.Fatalf("first query source = %v", res.Source)
	}

	// Session 2 (fresh engine, identically rebuilt graph -> same version):
	// the persisted result must be served without recomputation.
	e2 := New(Options{Store: store})
	g2, _ := dataset.PaperGraph()
	if err := e2.AddGraph("paper", g2); err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != SourceStore {
		t.Errorf("restart query source = %v, want store", res2.Source)
	}
	if !res2.Relation.Equal(res.Relation) {
		t.Error("persisted relation differs")
	}

	// A graph at a different version must not reuse the stale result.
	e3 := New(Options{Store: store})
	g3, p := dataset.PaperGraph()
	if err := g3.AddEdge(p.Fred, p.Pat); err != nil {
		t.Fatal(err)
	}
	if err := e3.AddGraph("paper", g3); err != nil {
		t.Fatal(err)
	}
	res3, err := e3.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Source == SourceStore {
		t.Error("stale persisted result served for a mutated graph")
	}
	sd, _ := q.Lookup("SD")
	if !res3.Relation.Has(sd, p.Fred) {
		t.Error("mutated-graph query missing Fred")
	}
}

func TestEngineStoreGraphRoundTrip(t *testing.T) {
	store, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Store: store})
	g, _ := dataset.PaperGraph()
	if err := e.AddGraph("paper", g); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveGraph("paper", storage.FormatBinary); err != nil {
		t.Fatalf("SaveGraph: %v", err)
	}
	if got := e.ListGraphs(); len(got) != 1 || got[0] != "paper" {
		t.Errorf("ListGraphs = %v", got)
	}
	// Fresh engine loads from the store.
	e2 := New(Options{Store: store})
	if err := e2.LoadGraph("paper"); err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	g2, err := e2.Graph("paper")
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(g) {
		t.Error("store round-trip changed the graph")
	}
	// Missing graph / missing store errors.
	if err := e.SaveGraph("nope", storage.FormatJSON); !errors.Is(err, ErrNoGraph) {
		t.Errorf("SaveGraph missing err = %v", err)
	}
	e3 := New(Options{})
	if err := e3.SaveGraph("paper", storage.FormatJSON); err == nil {
		t.Error("SaveGraph without store accepted")
	}
	if err := e3.LoadGraph("paper"); err == nil {
		t.Error("LoadGraph without store accepted")
	}
}

func TestCompressedAccessors(t *testing.T) {
	e, _ := newPaperEngine(t)
	if c, err := e.Compressed("paper"); err != nil || c != nil {
		t.Errorf("Compressed before compression = (%v, %v)", c, err)
	}
	if _, err := e.CompressGraph("paper", compress.Bisimulation, nil); err != nil {
		t.Fatal(err)
	}
	c, err := e.Compressed("paper")
	if err != nil || c == nil {
		t.Fatalf("Compressed after compression = (%v, %v)", c, err)
	}
	if err := e.DropCompression("paper"); err != nil {
		t.Fatal(err)
	}
	if c, _ := e.Compressed("paper"); c != nil {
		t.Error("DropCompression did not clear")
	}
	if err := e.DropCompression("nope"); !errors.Is(err, ErrNoGraph) {
		t.Errorf("DropCompression missing err = %v", err)
	}
	if _, err := e.Compressed("nope"); !errors.Is(err, ErrNoGraph) {
		t.Errorf("Compressed missing err = %v", err)
	}
}

func TestEngineNodeLifecycle(t *testing.T) {
	e, p := newPaperEngine(t)
	q := dataset.PaperQuery()
	if err := e.RegisterQuery("paper", q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CompressGraph("paper", compress.Bisimulation, compress.View{"experience"}); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		res, err := e.Query("paper", q, 0)
		if err != nil {
			t.Fatalf("%s: query: %v", stage, err)
		}
		g, _ := e.Graph("paper")
		if !res.Relation.Equal(bsim.Compute(g, q)) {
			t.Fatalf("%s: engine relation diverged from recompute", stage)
		}
		c, _ := e.Compressed("paper")
		expanded := c.Decompress(bsim.Compute(c.Graph(), q))
		if !expanded.Equal(res.Relation) {
			t.Fatalf("%s: compressed view diverged", stage)
		}
	}

	// Add a senior SA and wire them into Bob's team.
	newSA, err := e.AddNode("paper", "SA", graph.Attrs{
		"name": graph.String("Zed"), "experience": graph.Int(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	check("after AddNode")
	if _, err := e.ApplyUpdates("paper", []incremental.Update{
		incremental.Insert(newSA, p.Dan),
		incremental.Insert(newSA, p.Bill),
	}); err != nil {
		t.Fatal(err)
	}
	check("after wiring")
	sa, _ := q.Lookup("SA")
	res, _ := e.Query("paper", q, 0)
	if !res.Relation.Has(sa, newSA) {
		t.Error("new SA not matched after wiring")
	}

	// Demote Walt; he must drop out.
	if err := e.SetNodeAttr("paper", p.Walt, "experience", graph.Int(2)); err != nil {
		t.Fatal(err)
	}
	check("after SetNodeAttr")
	res, _ = e.Query("paper", q, 0)
	if res.Relation.Has(sa, p.Walt) {
		t.Error("demoted Walt still matched")
	}

	// Remove Dan entirely.
	if err := e.RemoveNode("paper", p.Dan); err != nil {
		t.Fatal(err)
	}
	check("after RemoveNode")
	g, _ := e.Graph("paper")
	if g.Has(p.Dan) {
		t.Error("Dan still present")
	}

	// Error paths.
	if _, err := e.AddNode("nope", "X", nil); !errors.Is(err, ErrNoGraph) {
		t.Errorf("AddNode missing graph err = %v", err)
	}
	if err := e.RemoveNode("paper", 9999); !errors.Is(err, graph.ErrNoNode) {
		t.Errorf("RemoveNode missing node err = %v", err)
	}
	if err := e.SetNodeAttr("paper", 9999, "x", graph.Int(1)); !errors.Is(err, graph.ErrNoNode) {
		t.Errorf("SetNodeAttr missing node err = %v", err)
	}
}

var benchResult *Result

func BenchmarkEngineQueryDirect(b *testing.B) {
	e := New(Options{})
	g, _ := dataset.PaperGraph()
	if err := e.AddGraph("paper", g); err != nil {
		b.Fatal(err)
	}
	q := dataset.PaperQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Unique pattern hash per iteration would defeat caching; instead
		// query through the cache to measure the steady-state hit path.
		res, err := e.Query("paper", q, 1)
		if err != nil {
			b.Fatal(err)
		}
		benchResult = res
	}
}
