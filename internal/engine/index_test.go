package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"expfinder/internal/bsim"
	"expfinder/internal/compress"
	"expfinder/internal/dataset"
	"expfinder/internal/distindex"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/pattern"
	"expfinder/internal/storage"
)

func TestIndexedPlanRouting(t *testing.T) {
	e, _ := newPaperEngine(t)
	q := dataset.PaperQuery()
	direct, err := e.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}

	// Fresh engine for the routed query, so the result cache from the
	// direct run cannot mask the indexed plan.
	eIx := New(Options{})
	g, _ := dataset.PaperGraph()
	if err := eIx.AddGraph("paper", g); err != nil {
		t.Fatal(err)
	}
	if _, err := eIx.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := eIx.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanIndexed || res.Source != SourceIndexed {
		t.Fatalf("plan/source = %v/%v, want %v/%v", res.Plan, res.Source, PlanIndexed, SourceIndexed)
	}
	if !res.Relation.Equal(direct.Relation) {
		t.Fatal("indexed relation differs from direct")
	}
	if fmt.Sprintf("%v", res.TopK) != fmt.Sprintf("%v", direct.TopK) {
		t.Fatalf("indexed top-K differs: %v vs %v", res.TopK, direct.TopK)
	}

	// A cache hit keeps reporting the selected plan.
	res2, err := eIx.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != SourceCache || res2.Plan != PlanIndexed {
		t.Fatalf("repeat plan/source = %v/%v", res2.Plan, res2.Source)
	}

	// Plain-simulation queries never take the indexed plan.
	qSim, err := pattern.Parse(`
node SA [label = "SA"] output
node SD [label = "SD"]
edge SA -> SD bound 1
`)
	if err != nil {
		t.Fatal(err)
	}
	resSim, err := eIx.Query("paper", qSim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resSim.Plan != PlanSimulation {
		t.Fatalf("plain query plan = %v", resSim.Plan)
	}
}

func TestIndexStatsLifecycle(t *testing.T) {
	e, _ := newPaperEngine(t)
	if _, err := e.IndexStats("paper"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("stats before build: %v", err)
	}
	st, err := e.BuildIndex("paper", distindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete || !st.Fresh || st.Landmarks == 0 {
		t.Fatalf("implausible build stats: %+v", st)
	}
	if _, err := e.Index("paper"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("paper"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("paper"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("double drop: %v", err)
	}
	if _, err := e.BuildIndex("nope", distindex.Options{}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("build on unknown graph: %v", err)
	}
}

func TestIndexRepairedAcrossInsertUpdates(t *testing.T) {
	e, p := newPaperEngine(t)
	q := dataset.PaperQuery()
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	// Example 3: inserting e1 adds exactly (SD, Fred).
	if _, err := e.ApplyUpdates("paper", []incremental.Update{incremental.Insert(p.Fred, p.Pat)}); err != nil {
		t.Fatal(err)
	}
	st, err := e.IndexStats("paper")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Fresh {
		t.Fatalf("index not fresh after insert repair: %+v", st)
	}
	res, err := e.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceIndexed {
		t.Fatalf("post-insert source = %v", res.Source)
	}
	g, err := e.Graph("paper")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.Equal(bsim.Compute(g, q)) {
		t.Fatal("indexed relation diverges after insert repair")
	}
	sd, _ := q.Lookup("SD")
	if !res.Relation.Has(sd, p.Fred) {
		t.Fatal("(SD, Fred) missing after insert")
	}
}

func TestIndexStaysFreshAfterRolledBackBatch(t *testing.T) {
	e, p := newPaperEngine(t)
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	// Op 2 duplicates an existing edge; the whole batch rolls back. The
	// graph content is unchanged, so the index must stay routed.
	_, err := e.ApplyUpdates("paper", []incremental.Update{
		incremental.Insert(p.Fred, p.Pat),
		incremental.Insert(p.Bob, p.Dan), // already present
	})
	if err == nil {
		t.Fatal("duplicate insert should fail the batch")
	}
	st, err := e.IndexStats("paper")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Fresh {
		t.Fatalf("index demoted by a rolled-back batch: %+v", st)
	}
	res, err := e.Query("paper", dataset.PaperQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceIndexed {
		t.Fatalf("post-rollback source = %v, want indexed", res.Source)
	}
	g, _ := e.Graph("paper")
	if !res.Relation.Equal(bsim.Compute(g, dataset.PaperQuery())) {
		t.Fatal("post-rollback relation wrong")
	}
}

func TestIndexInvalidatedByDeletion(t *testing.T) {
	e, p := newPaperEngine(t)
	q := dataset.PaperQuery()
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyUpdates("paper", []incremental.Update{incremental.Delete(p.Walt, p.Fred)}); err != nil {
		t.Fatal(err)
	}
	st, err := e.IndexStats("paper")
	if err != nil {
		t.Fatal(err)
	}
	if st.Fresh || !st.Stale {
		t.Fatalf("index should be stale after a deletion: %+v", st)
	}
	res, err := e.Query("paper", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanBounded || res.Source != SourceDirect {
		t.Fatalf("post-delete plan/source = %v/%v, want bounded/direct", res.Plan, res.Source)
	}
	g, _ := e.Graph("paper")
	if !res.Relation.Equal(bsim.Compute(g, q)) {
		t.Fatal("post-delete relation wrong")
	}
	// Rebuilding restores the indexed plan.
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	q2 := dataset.BenchQueries(1)[0] // different hash: dodge the cache
	res2, err := e.Query("paper", q2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != SourceIndexed {
		t.Fatalf("post-rebuild source = %v", res2.Source)
	}
}

func TestIndexNodeLifecycleHooks(t *testing.T) {
	e, p := newPaperEngine(t)
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	// Attribute changes keep the index fresh (distances untouched).
	if err := e.SetNodeAttr("paper", p.Bob, "experience", graph.Int(9)); err != nil {
		t.Fatal(err)
	}
	if st, _ := e.IndexStats("paper"); !st.Fresh {
		t.Fatalf("attr change should not invalidate: %+v", st)
	}
	// New nodes join the index; connecting them keeps it fresh and exact.
	id, err := e.AddNode("paper", "SD", graph.Attrs{"experience": graph.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyUpdates("paper", []incremental.Update{
		incremental.Insert(p.Bob, id), incremental.Insert(id, p.Eva),
	}); err != nil {
		t.Fatal(err)
	}
	st, _ := e.IndexStats("paper")
	if !st.Fresh {
		t.Fatalf("index not fresh after node add + inserts: %+v", st)
	}
	ix, err := e.Index("paper")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := e.Graph("paper")
	if ix.Distance(p.Bob, p.Eva) != g.Distance(p.Bob, p.Eva) {
		t.Fatal("index distance diverges after node lifecycle")
	}
	// Node removal invalidates.
	if err := e.RemoveNode("paper", id); err != nil {
		t.Fatal(err)
	}
	if st, _ := e.IndexStats("paper"); st.Fresh {
		t.Fatalf("node removal should invalidate: %+v", st)
	}
}

func TestIndexedTakesPrecedenceOverCompressed(t *testing.T) {
	e, _ := newPaperEngine(t)
	if _, err := e.CompressGraph("paper", compress.Bisimulation, compress.View{"experience"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("paper", dataset.PaperQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceIndexed {
		t.Fatalf("source = %v, want indexed over compressed", res.Source)
	}
}

func TestConcurrentIndexedQueriesAndInserts(t *testing.T) {
	e := New(Options{Parallelism: 4})
	g, p := dataset.PaperGraph()
	if err := e.AddGraph("paper", g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildIndex("paper", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	qs := dataset.BenchQueries(8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := e.QueryCtx(context.Background(), "paper", qs[(i*3+j)%len(qs)], 3); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			_, _ = e.ApplyUpdates("paper", []incremental.Update{incremental.Insert(p.Fred, p.Pat)})
			_, _ = e.ApplyUpdates("paper", []incremental.Update{incremental.Delete(p.Fred, p.Pat)})
		}
	}()
	wg.Wait()
}

// buildLabeledGraph constructs a graph with a fixed mutation count (four
// AddNode + three AddEdge calls -> version 7 every time) so two different
// contents land on the same version — the recycled-name collision the
// store path must disambiguate by fingerprint.
func buildLabeledGraph(labels [4]string) *graph.Graph {
	g := graph.New(4)
	var ids [4]graph.NodeID
	for i, l := range labels {
		ids[i] = g.AddNode(l, graph.Attrs{"experience": graph.Int(int64(5 + i))})
	}
	_ = g.AddEdge(ids[0], ids[1])
	_ = g.AddEdge(ids[1], ids[2])
	_ = g.AddEdge(ids[2], ids[3])
	return g
}

func TestStoreHitRequiresMatchingFingerprint(t *testing.T) {
	store, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := pattern.Parse(`
node A [label = "A"] output
node B [label = "B"]
edge A -> B bound 2
`)
	if err != nil {
		t.Fatal(err)
	}

	// Session 1: evaluate and persist on graph content X.
	e1 := New(Options{Store: store})
	if err := e1.AddGraph("g", buildLabeledGraph([4]string{"A", "B", "C", "D"})); err != nil {
		t.Fatal(err)
	}
	res1, err := e1.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Source != SourceDirect {
		t.Fatalf("first query source = %v", res1.Source)
	}

	// Same name, same version, same content: the persisted result hits.
	e2 := New(Options{Store: store})
	if err := e2.AddGraph("g", buildLabeledGraph([4]string{"A", "B", "C", "D"})); err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != SourceStore {
		t.Fatalf("matching version+fingerprint source = %v, want store", res2.Source)
	}
	if !res2.Relation.Equal(res1.Relation) {
		t.Fatal("persisted relation differs")
	}

	// Same name RECYCLED for different content at the same version: the
	// fingerprint must veto the (name, version) collision.
	e3 := New(Options{Store: store})
	if err := e3.AddGraph("g", buildLabeledGraph([4]string{"B", "A", "C", "D"})); err != nil {
		t.Fatal(err)
	}
	res3, err := e3.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Source == SourceStore {
		t.Fatal("stale persisted result served for a different graph under a recycled name")
	}
	// And the freshly computed answer reflects the new content: B no
	// longer follows A, so the relation is empty.
	if !res3.Relation.IsEmpty() {
		t.Fatalf("recycled-name relation = %v, want empty", res3.Relation)
	}

	// res3's direct evaluation overwrote the persisted record with the new
	// content's fingerprint — so the new content now hits, and the old one
	// misses again: last write wins, keyed by fingerprint.
	e4 := New(Options{Store: store})
	if err := e4.AddGraph("g", buildLabeledGraph([4]string{"B", "A", "C", "D"})); err != nil {
		t.Fatal(err)
	}
	res4, err := e4.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Source != SourceStore {
		t.Fatalf("rewritten record source = %v, want store", res4.Source)
	}
	e5 := New(Options{Store: store})
	if err := e5.AddGraph("g", buildLabeledGraph([4]string{"A", "B", "C", "D"})); err != nil {
		t.Fatal(err)
	}
	res5, err := e5.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res5.Source == SourceStore {
		t.Fatal("original content served from a record persisted for different content")
	}
}
