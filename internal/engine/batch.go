package engine

import (
	"context"
	"sync"
	"time"

	"expfinder/internal/pattern"
	"expfinder/internal/trace"
)

// QueryRequest names one query of a batch: the target graph, the pattern,
// and the top-K cutoff (k <= 0 ranks all matches of the output node).
type QueryRequest struct {
	Graph   string
	Pattern *pattern.Pattern
	K       int
}

// QueryOutcome is the answer to one QueryRequest: exactly one of Result
// and Err is set.
type QueryOutcome struct {
	Result *Result
	Err    error
}

// QueryCtx is Query with cancellation: it waits for an execution slot
// (the engine runs at most Parallelism queries at once) and gives up if
// ctx is cancelled while waiting for one. Cancellation is checked at
// the dispatch boundary only: a wait for the graph's read lock (behind
// an in-progress update) is not cancellable, and a query that already
// started is not torn down mid-evaluation.
//
// The slot is taken *after* the graph's read lock: a goroutine holding a
// token is always computing, never parked behind a writer, so one
// graph's long update can never drain the pool and stall queries to
// other graphs. The trade-off is that a query queued for a slot holds
// its target graph's read lock while it waits, delaying writers to that
// graph (only) until the pool frees up.
func (e *Engine) QueryCtx(ctx context.Context, graphName string, q *pattern.Pattern, k int) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	_, spWait := trace.StartSpan(ctx, "engine.wait")
	e.waiting.Add(1)
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.waiting.Add(-1)
		spWait.End()
		return nil, ctx.Err()
	}
	e.waiting.Add(-1)
	spWait.End()
	defer func() { <-e.sem }()
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	return e.queryLocked(ctx, graphName, mg, q, k, start), nil
}

// QueryBatch evaluates a batch of queries concurrently on a worker pool
// bounded by the engine's Parallelism, returning one outcome per request
// in request order. Each query is answered exactly as Query would answer
// it — the executor only changes scheduling, never results. Requests not
// yet started when ctx is cancelled fail with ctx.Err(); in-flight
// queries run to completion.
func (e *Engine) QueryBatch(ctx context.Context, reqs []QueryRequest) []QueryOutcome {
	out := make([]QueryOutcome, len(reqs))
	workers := e.par
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := e.QueryCtx(ctx, reqs[i].Graph, reqs[i].Pattern, reqs[i].K)
				out[i] = QueryOutcome{Result: res, Err: err}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// QueryAsync dispatches one query through the bounded executor and
// returns a channel that delivers its outcome (buffered: the result is
// never lost if the caller reads late).
func (e *Engine) QueryAsync(ctx context.Context, req QueryRequest) <-chan QueryOutcome {
	ch := make(chan QueryOutcome, 1)
	go func() {
		res, err := e.QueryCtx(ctx, req.Graph, req.Pattern, req.K)
		ch <- QueryOutcome{Result: res, Err: err}
		close(ch)
	}()
	return ch
}
