package engine

// Continuous queries: the engine front-end of internal/subscribe. A
// subscription is a standing query whose match deltas stream to the
// client as the graph evolves, maintained by the same per-graph
// coordination as registered queries, compressed views, and distance
// indexes — every mutation path fans out to the hub while holding the
// graph's lock, so subscribers observe exactly the relation sequence the
// mutations produced.

import (
	"context"
	"fmt"

	"expfinder/internal/incremental"
	"expfinder/internal/pattern"
	"expfinder/internal/subscribe"
)

// Subscribe registers a standing query on the named graph and returns a
// subscription whose first event is a snapshot of the current relation;
// subsequent events are match deltas published by ApplyUpdates /
// PushUpdates, node insertions, and flushes after invalidating mutations
// (RemoveNode, SetNodeAttr). Subscriptions sharing a pattern share one
// incremental matcher.
func (e *Engine) Subscribe(graphName string, q *pattern.Pattern, opts subscribe.Options) (*subscribe.Subscription, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	if mg.removed {
		// Lost the race with RemoveGraph: registering now would create a
		// subscription nothing can ever close.
		return nil, fmt.Errorf("%w: %q", ErrNoGraph, graphName)
	}
	return e.hub.Subscribe(graphName, mg.g, q, opts)
}

// Unsubscribe closes a subscription by id. The last subscriber of a
// standing query releases its matcher.
func (e *Engine) Unsubscribe(id string) error { return e.hub.Unsubscribe(id) }

// Subscription resolves a live subscription by id.
func (e *Engine) Subscription(id string) (*subscribe.Subscription, error) { return e.hub.Get(id) }

// Subscriptions lists the subscriptions on the named graph (every graph
// when the name is empty), sorted by id.
func (e *Engine) Subscriptions(graphName string) []subscribe.Info { return e.hub.List(graphName) }

// SubscriptionStats snapshots the subscription hub's counters.
func (e *Engine) SubscriptionStats() subscribe.Stats { return e.hub.Stats() }

// PushUpdates is ApplyUpdates for streaming workloads: it applies the
// edge updates, repairs registered queries, and additionally reports how
// many live subscriptions were handed a delta by the fan-out.
func (e *Engine) PushUpdates(graphName string, ops []incremental.Update) (deltas []Delta, notified int, err error) {
	return e.PushUpdatesCtx(context.Background(), graphName, ops)
}

// PushUpdatesCtx is PushUpdates threading ctx through to the WAL append
// so traced streaming updates capture the durability cost. Like
// ApplyUpdatesCtx, cancellation is not consulted.
func (e *Engine) PushUpdatesCtx(ctx context.Context, graphName string, ops []incremental.Update) (deltas []Delta, notified int, err error) {
	return e.applyUpdates(ctx, graphName, ops)
}

// FlushSubscriptions forces the lazy recompute of any standing queries
// invalidated by node removals or attribute changes and publishes the
// resulting net deltas, returning the number of subscriptions notified.
// Callers only need it to bound staleness between update batches —
// ApplyUpdates flushes as part of its fan-out.
func (e *Engine) FlushSubscriptions(graphName string) (int, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return 0, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return e.hub.Flush(graphName, mg.g), nil
}
