package engine

// Partitioned graphs: the engine front-end of internal/partition. A
// managed graph can carry an edge-cut partitioning; while it is fresh,
// bounded queries whose pattern radius keeps fragment-local work
// dominant route through the partition-parallel evaluator
// (PlanPartitioned), and every mutation path repairs the fragment
// assignment and ghost sets in place — the same post-apply Sync contract
// registered queries, compressed views, and the distance index follow.
//
// Partitionings are in-memory accelerators, like compressed views: they
// are not persisted, and after a crash recovery the operator (or a boot
// script) re-partitions — a rebuild is cheap relative to a WAL replay
// and always exact.

import (
	"errors"
	"fmt"

	"expfinder/internal/partition"
	"expfinder/internal/pattern"
)

// ErrNoPartition reports a partition operation on a graph without one.
var ErrNoPartition = errors.New("engine: no partitioning built")

// partitionRadiusCap bounds the pattern radius the partitioned plan
// accepts: beyond it (and for unbounded edges) a candidate's ball spans
// most of the graph, fragment locality stops paying, and the indexed or
// direct plans serve better.
const partitionRadiusCap = 4

// PartitionGraph builds (or replaces) the edge-cut partitioning of a
// graph and returns its stats. opts.Parts <= 0 defaults to the engine's
// parallelism. The build holds the graph's write lock — queries queue
// behind it — and is cheap: one streaming pass for assignment plus one
// edge sweep for the boundary bookkeeping.
func (e *Engine) PartitionGraph(graphName string, opts partition.Options) (partition.Stats, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return partition.Stats{}, err
	}
	if opts.Parts <= 0 {
		opts.Parts = e.par
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	pt, err := partition.Partition(mg.g, opts)
	if err != nil {
		return partition.Stats{}, err
	}
	mg.part = pt
	return pt.Stats(), nil
}

// DropPartitions removes the partitioning.
func (e *Engine) DropPartitions(graphName string) error {
	mg, err := e.lookup(graphName)
	if err != nil {
		return err
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	if mg.part == nil {
		return fmt.Errorf("%w: %q", ErrNoPartition, graphName)
	}
	mg.part = nil
	return nil
}

// PartitionStats returns the partitioning's stats (fragment sizes, cut
// edges, ghost counts, cumulative evaluator exchange volume), or
// ErrNoPartition.
func (e *Engine) PartitionStats(graphName string) (partition.Stats, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return partition.Stats{}, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	if mg.part == nil {
		return partition.Stats{}, fmt.Errorf("%w: %q", ErrNoPartition, graphName)
	}
	return mg.part.Stats(), nil
}

// partitionedWins reports whether the partitioned plan should take q:
// every ball the evaluator walks has radius <= the pattern's largest
// bound, so shallow bounded patterns stay fragment-local while deep or
// unbounded ones would turn every removal into a graph-wide walk with a
// boundary message per remote member.
func partitionedWins(q *pattern.Pattern) bool {
	if q.IsPlainSimulation() {
		return false // the quadratic simulation plan is strictly cheaper
	}
	maxBound, hasUnbounded := q.MaxBound()
	return !hasUnbounded && maxBound <= partitionRadiusCap
}
