package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"expfinder/internal/bsim"
	"expfinder/internal/dataset"
	"expfinder/internal/distindex"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/partition"
	"expfinder/internal/pattern"
	"expfinder/internal/subscribe"
	"expfinder/internal/testutil"
	"expfinder/internal/wal"
)

// directRelation computes the reference bounded-simulation relation on
// the engine's live graph, inside its read scope.
func directRelation(t *testing.T, e *Engine, name string, q *pattern.Pattern) string {
	t.Helper()
	var s string
	if err := e.WithGraph(name, func(g *graph.Graph) error {
		s = bsim.Compute(g, q).String()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartitionPlanRouting(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := testutil.RandomGraph(r, 300, 900)
	q := dataset.PaperQuery()
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PartitionStats("g"); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("stats before build error = %v", err)
	}
	st, err := e.PartitionGraph("g", partition.Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Parts != 4 || st.Nodes != 300 {
		t.Fatalf("partition stats = %+v", st)
	}

	want := directRelation(t, e, "g", q)
	res, err := e.Query("g", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanPartitioned || res.Source != SourcePartitioned {
		t.Fatalf("plan/source = %v/%v, want partitioned", res.Plan, res.Source)
	}
	if res.Relation.String() != want {
		t.Fatalf("partitioned relation diverged:\n got %s\nwant %s", res.Relation, want)
	}

	// A repeat answers from the cache under the same plan label.
	res2, err := e.Query("g", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != SourceCache || res2.Plan != PlanPartitioned {
		t.Fatalf("repeat plan/source = %v/%v", res2.Plan, res2.Source)
	}

	// Plain-simulation queries keep the quadratic plan.
	qSim, err := pattern.Parse(`
node SA [label = "SA"] output
node SD [label = "SD"]
edge SA -> SD
`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err = e.Query("g", qSim, 0); err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanSimulation {
		t.Fatalf("plain-sim plan = %v", res.Plan)
	}

	// Unbounded patterns span the whole graph — not fragment-local.
	qStar, err := pattern.Parse(`
node SA [label = "SA"] output
node SD [label = "SD"]
edge SA -> SD bound *
`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err = e.Query("g", qStar, 0); err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanBounded {
		t.Fatalf("unbounded plan = %v, want %v", res.Plan, PlanBounded)
	}

	if err := e.DropPartitions("g"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropPartitions("g"); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("double drop error = %v", err)
	}
}

// TestPartitionPrecedence: with both accelerators present, shallow
// bounded patterns take the partitioned plan, deep ones the indexed.
func TestPartitionPrecedence(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := testutil.RandomGraph(r, 400, 1200)
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PartitionGraph("g", partition.Options{Parts: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildIndex("g", distindex.Options{}); err != nil {
		t.Fatal(err)
	}
	shallow := dataset.PaperQuery()
	res, err := e.Query("g", shallow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanPartitioned {
		t.Fatalf("shallow plan = %v, want %v", res.Plan, PlanPartitioned)
	}
	deep, err := pattern.Parse(`
node SA [label = "SA", experience >= 4] output
node SD [label = "SD", experience >= 4]
edge SA -> SD bound 9
`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err = e.Query("g", deep, 0); err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanIndexed {
		t.Fatalf("deep plan = %v, want %v", res.Plan, PlanIndexed)
	}
}

// TestPartitionMutationRepair drives every engine mutation path over a
// partitioned graph and checks the partitioning stays fresh (the
// partitioned plan keeps serving) with results identical to the direct
// algorithm after every burst.
func TestPartitionMutationRepair(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	g := testutil.RandomGraph(r, 150, 450)
	q := dataset.PaperQuery()
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PartitionGraph("g", partition.Options{Parts: 5, Strategy: partition.StrategyGreedy}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		churn(t, e, "g", r, 20)
		want := directRelation(t, e, "g", q)
		res, err := e.Query("g", q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan != PlanPartitioned {
			t.Fatalf("round %d: plan = %v (partitioning went stale)", round, res.Plan)
		}
		if res.Source != SourcePartitioned && res.Source != SourceCache {
			t.Fatalf("round %d: source = %v", round, res.Source)
		}
		if res.Relation.String() != want {
			t.Fatalf("round %d: partitioned relation diverged", round)
		}
		st, err := e.PartitionStats("g")
		if err != nil {
			t.Fatal(err)
		}
		var version uint64
		total := 0
		if err := e.WithGraph("g", func(g *graph.Graph) error {
			version = g.Version()
			total = g.NumNodes()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if st.GraphVersion != version {
			t.Fatalf("round %d: partition version %d, graph %d", round, st.GraphVersion, version)
		}
		sum := 0
		for _, fs := range st.Fragments {
			sum += fs.Nodes
		}
		if sum != total {
			t.Fatalf("round %d: fragments own %d nodes, graph has %d", round, sum, total)
		}
	}
}

// TestPartitionRollbackKeepsFresh: a failed update batch rolls back and
// must leave the partitioning routed (content unchanged, version
// re-stamped) — the same contract the distance index has.
func TestPartitionRollbackKeepsFresh(t *testing.T) {
	g, _ := dataset.PaperGraph()
	q := dataset.PaperQuery()
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PartitionGraph("g", partition.Options{Parts: 3}); err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	u, v := nodes[0], nodes[1]
	if g.HasEdge(u, v) {
		t.Skip("fixture edge exists; pick another pair")
	}
	ops := []incremental.Update{
		incremental.Insert(u, v),
		incremental.Insert(u, v), // duplicate: fails, rolls back the first
	}
	if _, err := e.ApplyUpdates("g", ops); err == nil {
		t.Fatal("duplicate insert batch unexpectedly succeeded")
	}
	res, err := e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanPartitioned {
		t.Fatalf("plan after rollback = %v (partitioning went stale)", res.Plan)
	}
	if res.Relation.String() != directRelation(t, e, "g", q) {
		t.Fatal("relation diverged after rollback")
	}
}

// TestSubscriptionsOnPartitionedGraph: continuous queries keep their
// exactness guarantee while the partitioned plan serves one-shot
// queries on the same graph.
func TestSubscriptionsOnPartitionedGraph(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g := testutil.RandomGraph(r, 80, 240)
	q := testutil.RandomPattern(r, 3)
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PartitionGraph("g", partition.Options{Parts: 4}); err != nil {
		t.Fatal(err)
	}
	sub, err := e.Subscribe("g", q, subscribe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mi := subscribe.NewMirror(q.NumNodes())
	drainSub(t, sub, mi)
	for round := 0; round < 5; round++ {
		var ops []incremental.Update
		if err := e.WithGraph("g", func(gg *graph.Graph) error {
			scratch := gg.Clone()
			for _, op := range testutil.RandomOps(r, scratch, 12) {
				ops = append(ops, incremental.Update{Insert: op.Insert, From: op.From, To: op.To})
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.PushUpdates("g", ops); err != nil {
			t.Fatal(err)
		}
		drainSub(t, sub, mi)
		want := directRelation(t, e, "g", q)
		if mi.Relation().String() != want {
			t.Fatalf("round %d: mirrored relation diverged from direct", round)
		}
	}
	st, err := e.PartitionStats("g")
	if err != nil {
		t.Fatal(err)
	}
	var version uint64
	if err := e.WithGraph("g", func(gg *graph.Graph) error { version = gg.Version(); return nil }); err != nil {
		t.Fatal(err)
	}
	if st.GraphVersion != version {
		t.Fatal("partitioning went stale under subscription traffic")
	}
}

// TestRecoveryWithPartitionedGraph: WAL recovery restores a graph that
// was partitioned byte-identically; the partitioning itself is an
// in-memory accelerator (not persisted) and is rebuilt on demand.
func TestRecoveryWithPartitionedGraph(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(37))
	q := dataset.PaperQuery()

	e := durableEngine(t, dir, wal.Options{})
	if err := e.AddGraph("g", testutil.RandomGraph(r, 100, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PartitionGraph("g", partition.Options{Parts: 4}); err != nil {
		t.Fatal(err)
	}
	churn(t, e, "g", r, 40)
	res, err := e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != PlanPartitioned {
		t.Fatalf("pre-crash plan = %v", res.Plan)
	}
	before := engineImage(t, e, "g")
	want := res.Relation.String()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := durableEngine(t, dir, wal.Options{})
	sum, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed()) != 0 {
		t.Fatalf("recovery failures: %+v", sum.Failed())
	}
	if !bytes.Equal(engineImage(t, e2, "g"), before) {
		t.Fatal("recovered graph image diverged")
	}
	// Partitionings do not survive restarts; queries still answer
	// exactly, and a re-partition restores the partitioned plan.
	if _, err := e2.PartitionStats("g"); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("partition stats after recovery = %v, want ErrNoPartition", err)
	}
	res, err = e2.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.String() != want {
		t.Fatal("post-recovery relation diverged")
	}
	if _, err := e2.PartitionGraph("g", partition.Options{Parts: 3}); err != nil {
		t.Fatal(err)
	}
	res, err = e2.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.String() != want {
		t.Fatal("re-partitioned relation diverged")
	}
}
