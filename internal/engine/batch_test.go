package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"expfinder/internal/dataset"
	"expfinder/internal/generator"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/pattern"
	"expfinder/internal/rank"
	"expfinder/internal/testutil"
)

// batchWorkload is a shared graph plus a set of distinct queries against
// it (varying experience thresholds so no two share a cache key).
func batchWorkload(t *testing.T, nQueries int) (*graph.Graph, []*pattern.Pattern) {
	t.Helper()
	g, err := generator.Generate(generator.KindCollab, generator.Config{Nodes: 400, AvgDegree: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*pattern.Pattern, nQueries)
	for i := range qs {
		q, err := pattern.Parse(fmt.Sprintf(`
node SA [label = "SA", experience >= %d] output
node SD [label = "SD"]
edge SA -> SD bound 2
edge SD -> SA bound 2
`, 1+i%6))
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	return g, qs
}

func TestQueryBatchMatchesSerial(t *testing.T) {
	g, qs := batchWorkload(t, 12)
	serial := New(Options{Parallelism: 1})
	parallel := New(Options{Parallelism: 4})
	for _, e := range []*Engine{serial, parallel} {
		if err := e.AddGraph("g", g); err != nil {
			t.Fatal(err)
		}
	}
	reqs := make([]QueryRequest, len(qs))
	for i, q := range qs {
		reqs[i] = QueryRequest{Graph: "g", Pattern: q, K: 5}
	}
	want := make([]*Result, len(qs))
	for i, q := range qs {
		res, err := serial.Query("g", q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	got := parallel.QueryBatch(context.Background(), reqs)
	if len(got) != len(reqs) {
		t.Fatalf("outcomes = %d, want %d", len(got), len(reqs))
	}
	for i, oc := range got {
		if oc.Err != nil {
			t.Fatalf("request %d: %v", i, oc.Err)
		}
		if !oc.Result.Relation.Equal(want[i].Relation) {
			t.Errorf("request %d: batch relation diverged from serial", i)
		}
		if !sameRanking(oc.Result.TopK, want[i].TopK) {
			t.Errorf("request %d: batch top-K diverged from serial", i)
		}
	}
}

func sameRanking(a, b []rank.Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Rank != b[i].Rank {
			return false
		}
	}
	return true
}

// TestExecutorDeterminism pins the ISSUE acceptance check: identical match
// relations and top-K ranking for Parallelism 1, 4, and GOMAXPROCS.
func TestExecutorDeterminism(t *testing.T) {
	g, qs := batchWorkload(t, 8)
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	var baseline []QueryOutcome
	for _, par := range levels {
		e := New(Options{Parallelism: par})
		if err := e.AddGraph("g", g); err != nil {
			t.Fatal(err)
		}
		reqs := make([]QueryRequest, len(qs))
		for i, q := range qs {
			reqs[i] = QueryRequest{Graph: "g", Pattern: q, K: 10}
		}
		out := e.QueryBatch(context.Background(), reqs)
		for i, oc := range out {
			if oc.Err != nil {
				t.Fatalf("parallelism %d request %d: %v", par, i, oc.Err)
			}
		}
		if baseline == nil {
			baseline = out
			continue
		}
		for i := range out {
			if !out[i].Result.Relation.Equal(baseline[i].Result.Relation) {
				t.Errorf("parallelism %d request %d: relation differs from parallelism %d", par, i, levels[0])
			}
			if !sameRanking(out[i].Result.TopK, baseline[i].Result.TopK) {
				t.Errorf("parallelism %d request %d: top-K differs from parallelism %d", par, i, levels[0])
			}
		}
	}
}

func TestQueryBatchIsolatesFailures(t *testing.T) {
	e, _ := newPaperEngine(t)
	q := dataset.PaperQuery()
	bad := pattern.New() // fails Validate: no nodes
	out := e.QueryBatch(context.Background(), []QueryRequest{
		{Graph: "paper", Pattern: q, K: 1},
		{Graph: "missing", Pattern: q, K: 1},
		{Graph: "paper", Pattern: bad, K: 1},
		{Graph: "paper", Pattern: q, K: 1},
	})
	if out[0].Err != nil || out[3].Err != nil {
		t.Fatalf("good requests failed: %v, %v", out[0].Err, out[3].Err)
	}
	if !errors.Is(out[1].Err, ErrNoGraph) {
		t.Errorf("missing graph error = %v, want ErrNoGraph", out[1].Err)
	}
	if out[2].Err == nil {
		t.Error("invalid pattern did not fail")
	}
	if out[0].Result.Relation.Size() != 7 || out[3].Result.Relation.Size() != 7 {
		t.Error("good outcomes wrong")
	}
}

func TestQueryBatchCancelled(t *testing.T) {
	e, _ := newPaperEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := e.QueryBatch(ctx, []QueryRequest{
		{Graph: "paper", Pattern: dataset.PaperQuery(), K: 1},
		{Graph: "paper", Pattern: dataset.PaperQuery(), K: 1},
	})
	for i, oc := range out {
		if !errors.Is(oc.Err, context.Canceled) {
			t.Errorf("request %d: err = %v, want context.Canceled", i, oc.Err)
		}
	}
}

func TestQueryAsync(t *testing.T) {
	e, p := newPaperEngine(t)
	oc := <-e.QueryAsync(context.Background(), QueryRequest{Graph: "paper", Pattern: dataset.PaperQuery(), K: 1})
	if oc.Err != nil {
		t.Fatal(oc.Err)
	}
	if len(oc.Result.TopK) != 1 || oc.Result.TopK[0].Node != p.Bob {
		t.Errorf("top-1 = %v, want Bob", oc.Result.TopK)
	}
}

// TestPerGraphLockSharding drives queries and updates on independent
// graphs from many goroutines at once: with per-graph locks none of it
// may deadlock, race (the -race CI job), or corrupt either graph.
func TestPerGraphLockSharding(t *testing.T) {
	e := New(Options{Parallelism: 8})
	r := rand.New(rand.NewSource(21))
	for _, name := range []string{"a", "b"} {
		if err := e.AddGraph(name, testutil.RandomGraph(r, 80, 240)); err != nil {
			t.Fatal(err)
		}
	}
	q := testutil.RandomPattern(rand.New(rand.NewSource(22)), 3)
	ga, _ := e.Graph("a")
	opsMirror := ga.Clone()
	ops := testutil.RandomOps(rand.New(rand.NewSource(23)), opsMirror, 40)

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	wg.Add(1)
	go func() { // mutate graph a...
		defer wg.Done()
		for _, op := range ops {
			if _, err := e.ApplyUpdates("a", []incremental.Update{{Insert: op.Insert, From: op.From, To: op.To}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ { // ...while querying graph b
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := e.Query("b", q, 3); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestReAddedGraphDoesNotServeStaleCache pins the epoch-keyed cache: a
// graph removed and re-registered under its old name (with a colliding
// per-graph version counter) must never be answered from the previous
// instance's cache entries — even when an in-flight query re-inserts one
// after RemoveGraph's purge.
func TestReAddedGraphDoesNotServeStaleCache(t *testing.T) {
	e := New(Options{})
	g1, _ := dataset.PaperGraph()
	q := dataset.PaperQuery()
	if err := e.AddGraph("g", g1); err != nil {
		t.Fatal(err)
	}
	res1, err := e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Relation.Size() != 7 {
		t.Fatalf("relation size = %d, want 7", res1.Relation.Size())
	}
	if err := e.RemoveGraph("g"); err != nil {
		t.Fatal(err)
	}
	// Same name, same version (both graphs are unmutated), no matches.
	if err := e.AddGraph("g", graph.New(0)); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source == SourceCache {
		t.Error("re-added graph served from the old instance's cache")
	}
	if res2.Relation.Size() != 0 {
		t.Errorf("relation size = %d on empty graph, want 0", res2.Relation.Size())
	}
}
