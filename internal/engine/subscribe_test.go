package engine

import (
	"errors"
	"math/rand"
	"testing"

	"expfinder/internal/bsim"
	"expfinder/internal/dataset"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/subscribe"
	"expfinder/internal/testutil"
)

func drainSub(t *testing.T, s *subscribe.Subscription, mi *subscribe.Mirror) {
	t.Helper()
	for {
		ev, ok := s.Poll()
		if !ok {
			return
		}
		if err := mi.Apply(ev); err != nil {
			t.Fatalf("apply event: %v", err)
		}
	}
}

func TestSubscribeSnapshotAndPushUpdates(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	s, err := e.Subscribe("g", q, subscribe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mi := subscribe.NewMirror(q.NumNodes())
	drainSub(t, s, mi)
	res, err := e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Relation().String() != res.Relation.String() {
		t.Fatalf("snapshot != Query relation:\n got %v\nwant %v", mi.Relation(), res.Relation)
	}

	e1 := dataset.E1(p)
	deltas, notified, err := e.PushUpdates("g", []incremental.Update{incremental.Insert(e1.From, e1.To)})
	if err != nil {
		t.Fatal(err)
	}
	if notified != 1 {
		t.Fatalf("notified = %d, want 1", notified)
	}
	_ = deltas // no registered queries; subscription deltas flow via the hub
	drainSub(t, s, mi)
	res, err = e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Relation().String() != res.Relation.String() {
		t.Fatalf("after push:\n got %v\nwant %v", mi.Relation(), res.Relation)
	}
}

func TestSubscriptionListAndUnsubscribe(t *testing.T) {
	g, _ := dataset.PaperGraph()
	q := dataset.PaperQuery()
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	s1, err := e.Subscribe("g", q, subscribe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Subscribe("g", q, subscribe.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	infos := e.Subscriptions("g")
	if len(infos) != 2 || infos[0].ID != s1.ID() || infos[1].ID != s2.ID() {
		t.Fatalf("listing = %+v", infos)
	}
	if got, err := e.Subscription(s1.ID()); err != nil || got != s1 {
		t.Fatalf("Subscription(%s) = %v, %v", s1.ID(), got, err)
	}
	if st := e.SubscriptionStats(); st.Subscriptions != 2 || st.Groups != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := e.Unsubscribe(s1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := e.Unsubscribe(s1.ID()); !errors.Is(err, subscribe.ErrNoSubscription) {
		t.Fatalf("double unsubscribe: %v", err)
	}
	if infos := e.Subscriptions(""); len(infos) != 1 {
		t.Fatalf("listing after unsubscribe = %+v", infos)
	}
}

func TestSubscribeUnknownGraph(t *testing.T) {
	e := New(Options{})
	if _, err := e.Subscribe("nope", dataset.PaperQuery(), subscribe.Options{}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("want ErrNoGraph, got %v", err)
	}
	if _, err := e.FlushSubscriptions("nope"); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("flush: want ErrNoGraph, got %v", err)
	}
}

func TestRemoveGraphClosesSubscriptions(t *testing.T) {
	g, _ := dataset.PaperGraph()
	q := dataset.PaperQuery()
	e := New(Options{})
	if err := e.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}
	s, err := e.Subscribe("g", q, subscribe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveGraph("g"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Poll(); !ok { // buffered snapshot survives
		t.Fatal("snapshot lost on graph removal")
	}
	if _, err := s.Next(nil); !errors.Is(err, subscribe.ErrGraphRemoved) {
		t.Fatalf("want ErrGraphRemoved, got %v", err)
	}
	if len(e.Subscriptions("")) != 0 {
		t.Fatal("subscriptions survived graph removal")
	}
}

// TestSubscriptionCoexistsWithRegisteredQuery pins that the hub's
// matchers are independent of RegisterQuery's: both paths see the same
// deltas without double-syncing.
func TestSubscriptionCoexistsWithRegisteredQuery(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := testutil.RandomGraph(r, 60, 240)
	q := testutil.RandomPattern(r, 3)
	e := New(Options{})
	if err := e.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterQuery("g", q); err != nil {
		t.Fatal(err)
	}
	s, err := e.Subscribe("g", q, subscribe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mi := subscribe.NewMirror(q.NumNodes())
	scratch := g.Clone()
	for round := 0; round < 10; round++ {
		ops := engineRandomOps(r, scratch, 5)
		if _, err := e.ApplyUpdates("g", ops); err != nil {
			t.Fatal(err)
		}
	}
	drainSub(t, s, mi)
	res, err := e.Query("g", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceIncremental && res.Source != SourceCache {
		t.Fatalf("registered query not served incrementally: %v", res.Source)
	}
	if mi.Relation().String() != res.Relation.String() {
		t.Fatalf("subscription diverged from registered query:\n got %v\nwant %v",
			mi.Relation(), res.Relation)
	}
}

func engineRandomOps(r *rand.Rand, scratch *graph.Graph, nOps int) []incremental.Update {
	nodes := scratch.Nodes()
	var ops []incremental.Update
	for len(ops) < nOps {
		u := nodes[r.Intn(len(nodes))]
		v := nodes[r.Intn(len(nodes))]
		if u == v {
			continue
		}
		if scratch.HasEdge(u, v) {
			if scratch.RemoveEdge(u, v) == nil {
				ops = append(ops, incremental.Delete(u, v))
			}
		} else if scratch.AddEdge(u, v) == nil {
			ops = append(ops, incremental.Insert(u, v))
		}
	}
	return ops
}

// TestQuickSubscriptionStreamEqualsMatch is the acceptance property: a
// subscription fed a randomized update stream — edge churn through
// PushUpdates, node additions, node removals and attribute changes
// through the engine's invalidating paths — ends with a mirrored
// relation byte-identical to a fresh Match (bsim.Compute) on the final
// graph.
func TestQuickSubscriptionStreamEqualsMatch(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(9000 + trial)))
		g := testutil.RandomGraph(r, 40+r.Intn(40), 150+r.Intn(120))
		q := testutil.RandomPattern(r, 2+r.Intn(3))
		e := New(Options{})
		if err := e.AddGraph("g", g); err != nil {
			t.Fatal(err)
		}
		s, err := e.Subscribe("g", q, subscribe.Options{Buffer: 1 + r.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		mi := subscribe.NewMirror(q.NumNodes())
		for round := 0; round < 12; round++ {
			switch r.Intn(6) {
			case 0: // node insertion
				if _, err := e.AddNode("g", testutil.Labels[r.Intn(len(testutil.Labels))],
					graph.Attrs{"experience": graph.Int(int64(r.Intn(10)))}); err != nil {
					t.Fatal(err)
				}
			case 1: // node removal (invalidates standing queries)
				var mgG *graph.Graph
				if err := e.WithGraph("g", func(gg *graph.Graph) error { mgG = gg; return nil }); err != nil {
					t.Fatal(err)
				}
				nodes := mgG.Nodes()
				if len(nodes) > 10 {
					if err := e.RemoveNode("g", nodes[r.Intn(len(nodes))]); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // attribute change (invalidates standing queries)
				var mgG *graph.Graph
				if err := e.WithGraph("g", func(gg *graph.Graph) error { mgG = gg; return nil }); err != nil {
					t.Fatal(err)
				}
				nodes := mgG.Nodes()
				id := nodes[r.Intn(len(nodes))]
				if err := e.SetNodeAttr("g", id, "experience", graph.Int(int64(r.Intn(10)))); err != nil {
					t.Fatal(err)
				}
			default: // edge churn
				var ops []incremental.Update
				if err := e.WithGraph("g", func(gg *graph.Graph) error {
					ops = engineRandomOps(r, gg.Clone(), 1+r.Intn(5))
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if _, _, err := e.PushUpdates("g", ops); err != nil {
					t.Fatal(err)
				}
			}
			if r.Intn(3) == 0 {
				drainSub(t, s, mi)
			}
		}
		if _, err := e.FlushSubscriptions("g"); err != nil {
			t.Fatal(err)
		}
		drainSub(t, s, mi)
		var want string
		if err := e.WithGraph("g", func(gg *graph.Graph) error {
			want = bsim.Compute(gg, q).String()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := mi.Relation().String(); got != want {
			t.Fatalf("trial %d: streamed relation diverged\n got %s\nwant %s\npattern %v",
				trial, got, want, q)
		}
	}
}
