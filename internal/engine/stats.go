package engine

// Engine surface of the statistics subsystem (see internal/stats):
// the shape signature stamped on query spans for the plan-outcome
// recorder, and the accessor the serving tier renders at
// /api/v1/graphs/{name}/stats.

import (
	"fmt"

	"expfinder/internal/pattern"
	"expfinder/internal/stats"
)

// patternShape is a pattern's coarse shape signature: node count, edge
// count, and maximum bound ("*" when any edge is unbounded). Plan
// outcomes aggregate per shape — shapes, not whole patterns, are the
// granularity a cost model generalizes over.
func patternShape(q *pattern.Pattern) string {
	max, unbounded := q.MaxBound()
	if unbounded {
		return fmt.Sprintf("n%de%db*", q.NumNodes(), q.NumEdges())
	}
	return fmt.Sprintf("n%de%db%d", q.NumNodes(), q.NumEdges(), max)
}

// GraphStatistics returns the named graph's statistics snapshot,
// rebuilding first if the counters have gone stale. Returns nil (no
// error) when the engine runs with DisableStats.
func (e *Engine) GraphStatistics(graphName string) (*stats.Snapshot, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return nil, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return mg.st.Snapshot(mg.g), nil
}

// StatsRebuilds reports how many from-scratch recounts the named
// graph's statistics have paid (1 for the build at registration; more
// means a reader caught a stale stamp). 0 with DisableStats.
func (e *Engine) StatsRebuilds(graphName string) (uint64, error) {
	mg, err := e.lookup(graphName)
	if err != nil {
		return 0, err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return mg.st.Rebuilds(), nil
}
