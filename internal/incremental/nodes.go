package incremental

import (
	"expfinder/internal/graph"
	"expfinder/internal/match"
	"expfinder/internal/pattern"
)

// Node-level maintenance. Edge updates are the common case (Apply/Sync);
// the engine additionally keeps matchers alive across node insertions,
// node removals and attribute changes instead of re-registering:
//
//   - a freshly added node has no edges, so it can only match pattern
//     nodes whose obligations it satisfies vacuously, and nothing else can
//     gain or lose support from it (no cascades);
//   - a node is removed only after its incident edges were removed and
//     synced, so clearing its candidacy cannot cascade either;
//   - an attribute change can both disqualify (removal refinement) and
//     qualify (admission closure) the node.

// RefreshVersion re-synchronizes the matcher's staleness check with the
// graph after coordinated mutations the matcher was already told about
// through its Sync* methods (the engine's node-removal sequence ends with
// a graph mutation the matcher does not see individually).
func (m *Matcher) RefreshVersion() { m.version = m.g.Version() }

// ensureCap grows the matcher's dense per-node structures after the graph
// allocated new node ids.
func (m *Matcher) ensureCap() {
	maxID := m.g.MaxID()
	if maxID <= m.maxID {
		return
	}
	for u := range m.cand {
		grown := make([]bool, maxID)
		copy(grown, m.cand[u])
		m.cand[u] = grown
	}
	mark := make([]uint32, maxID)
	copy(mark, m.mark)
	m.mark = mark
	m.maxID = maxID
}

// SyncNodeAdded registers a node that was just added to the graph (with no
// incident edges yet). It returns the match pairs gained.
func (m *Matcher) SyncNodeAdded(id graph.NodeID) []match.Pair {
	m.ensureCap()
	n, ok := m.g.Node(id)
	if !ok {
		return nil
	}
	var added []match.Pair
	for u := range m.cand {
		uIdx := pattern.NodeIdx(u)
		if m.q.Node(uIdx).Pred.Eval(n) && m.satisfies(uIdx, id) {
			m.cand[u][id] = true
			added = append(added, match.Pair{PNode: uIdx, Node: id})
		}
	}
	m.version = m.g.Version()
	return added
}

// SyncNodeRemoving clears a node's candidacy ahead of its removal from the
// graph. The caller must have removed and synced the node's incident edges
// first (the engine does); at that point nothing else depends on the node,
// so no cascade is needed. It returns the match pairs lost.
func (m *Matcher) SyncNodeRemoving(id graph.NodeID) []match.Pair {
	var removed []match.Pair
	if int(id) >= m.maxID {
		return nil
	}
	for u := range m.cand {
		if m.cand[u][id] {
			m.cand[u][id] = false
			removed = append(removed, match.Pair{PNode: pattern.NodeIdx(u), Node: id})
		}
	}
	m.version = m.g.Version()
	return removed
}

// SyncAttrChanged re-evaluates a node whose attributes changed: candidacy
// it loses cascades through the removal refinement; candidacy it might gain
// enters through the admission closure (its own and, transitively, its
// upstream neighbourhood's).
func (m *Matcher) SyncAttrChanged(id graph.NodeID) (added, removed []match.Pair, err error) {
	m.ensureCap()
	n, ok := m.g.Node(id)
	if !ok {
		return nil, nil, graph.ErrNoNode
	}
	// Disqualifications: pairs whose predicate no longer holds.
	var seeds []pair
	for u := range m.cand {
		uIdx := pattern.NodeIdx(u)
		if m.cand[u][id] && !m.q.Node(uIdx).Pred.Eval(n) {
			m.cand[u][id] = false
			removed = append(removed, match.Pair{PNode: uIdx, Node: id})
			// Dependents of (u, id) must be rechecked, exactly as in the
			// edge-deletion path.
			for _, e := range m.inEdges[u] {
				src := e.From
				if e.Bound == 1 {
					for _, w := range m.g.In(id) {
						if m.cand[src][w] {
							seeds = append(seeds, pair{src, w})
						}
					}
					continue
				}
				m.visitBall(id, e.Bound, true, func(w graph.NodeID, _ int) bool {
					if m.cand[src][w] {
						seeds = append(seeds, pair{src, w})
					}
					return true
				})
			}
		}
	}
	for _, p := range m.refine(seeds) {
		removed = append(removed, match.Pair{PNode: p.u, Node: p.v})
	}

	// Qualifications: the node may newly satisfy predicates. Seed the
	// admission closure directly with the node for every pattern position;
	// the closure handles upstream enablement.
	tentative := m.admissionSeedNode(id)
	stripped := m.refine(tentative)
	strippedSet := make(map[pair]bool, len(stripped))
	for _, p := range stripped {
		strippedSet[p] = true
	}
	for _, p := range tentative {
		if m.cand[p.u][p.v] && !strippedSet[p] {
			added = append(added, match.Pair{PNode: p.u, Node: p.v})
		}
	}
	m.version = m.g.Version()
	return added, removed, nil
}

// admissionSeedNode runs the admission closure seeded with one node across
// all pattern positions (used for attribute changes, where the node's
// eligibility itself changed rather than the graph topology).
func (m *Matcher) admissionSeedNode(id graph.NodeID) []pair {
	var tentative []pair
	queued := map[pair]bool{}
	var queue []pair
	consider := func(u pattern.NodeIdx, v graph.NodeID) {
		if m.cand[u][v] {
			return
		}
		p := pair{u, v}
		if queued[p] {
			return
		}
		n, ok := m.g.Node(v)
		if !ok || !m.q.Node(u).Pred.Eval(n) {
			return
		}
		queued[p] = true
		queue = append(queue, p)
	}
	for u := range m.cand {
		consider(pattern.NodeIdx(u), id)
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		m.cand[p.u][p.v] = true
		tentative = append(tentative, p)
		for _, e := range m.inEdges[p.u] {
			from := e.From
			if e.Bound == 1 {
				for _, w := range m.g.In(p.v) {
					consider(from, w)
				}
				continue
			}
			m.visitBall(p.v, e.Bound, true, func(w graph.NodeID, _ int) bool {
				consider(from, w)
				return true
			})
		}
	}
	return tentative
}
