// Package incremental maintains match relations under graph updates, the
// demo's Incremental Computation Module (implementing the approach of Fan
// et al., SIGMOD 2011). Instead of re-evaluating a registered query on the
// whole graph after every change, a Matcher keeps the candidate sets of
// M(Q,G) and repairs them by examining only the affected area around each
// updated edge:
//
//   - a deletion can only shrink the relation: candidates within bound-1
//     hops upstream of the deleted edge are rechecked, and removals cascade
//     through bounded in-balls;
//   - an insertion can only grow it: predicate-satisfying non-candidates
//     upstream of the new edge are tentatively re-admitted, the re-admission
//     closure is computed (mutually supporting groups enter together), and a
//     removal refinement strips the unjustified ones.
//
// The result after any update batch is exactly the maximum bounded
// simulation relation on the updated graph — property-tested against batch
// recomputation in this package's tests.
package incremental

import (
	"errors"

	"expfinder/internal/graph"
	"expfinder/internal/match"
	"expfinder/internal/pattern"
)

// Update is one edge insertion or deletion.
type Update struct {
	Insert   bool
	From, To graph.NodeID
}

// Insert returns an edge-insertion update.
func Insert(from, to graph.NodeID) Update { return Update{Insert: true, From: from, To: to} }

// Delete returns an edge-deletion update.
func Delete(from, to graph.NodeID) Update { return Update{Insert: false, From: from, To: to} }

// ErrStale is returned when the underlying graph changed behind the
// matcher's back (anything other than the matcher's own Apply calls).
var ErrStale = errors.New("incremental: graph version changed outside the matcher")

type pair struct {
	u pattern.NodeIdx
	v graph.NodeID
}

// Matcher incrementally maintains M(Q,G) for one registered query. It owns
// edge updates to the graph: all changes must go through Apply so the
// matcher's candidate sets stay consistent with the graph. Node insertions,
// node removals and attribute changes invalidate the matcher; register a
// fresh one (the engine does this automatically).
type Matcher struct {
	g       *graph.Graph
	q       *pattern.Pattern
	version uint64
	maxID   int
	cand    [][]bool // un-normalized maximal candidate sets
	// Pattern adjacency cached to avoid re-deriving per recheck.
	outEdges [][]pattern.Edge
	inEdges  [][]pattern.Edge
	maxBound int  // largest finite bound
	unbound  bool // whether any edge is unbounded
	// Reusable BFS scratch: epoch-marked visited array and queue, so the
	// hot recheck path allocates nothing. Matchers are not safe for
	// concurrent use (the engine serializes them).
	mark  []uint32
	epoch uint32
	queue []ballEntry
}

type ballEntry struct {
	id graph.NodeID
	d  int32
}

// visitBall walks the nodes within 1..k hops from v (k < 0 means
// unbounded), forward or reverse, invoking fn with each node and its hop
// distance. fn returning false stops the walk. Nonempty-path semantics: v
// itself is visited if it lies on a cycle within the radius.
func (m *Matcher) visitBall(v graph.NodeID, k int, reverse bool, fn func(graph.NodeID, int) bool) {
	m.epoch++
	if m.epoch == 0 { // wrapped: reset marks
		for i := range m.mark {
			m.mark[i] = 0
		}
		m.epoch = 1
	}
	m.mark[v] = m.epoch
	m.queue = m.queue[:0]
	m.queue = append(m.queue, ballEntry{v, 0})
	sawCenter := false
	for qi := 0; qi < len(m.queue); qi++ {
		cur := m.queue[qi]
		if k >= 0 && int(cur.d) >= k {
			continue
		}
		var next []graph.NodeID
		if reverse {
			next = m.g.In(cur.id)
		} else {
			next = m.g.Out(cur.id)
		}
		for _, nb := range next {
			if nb == v {
				if !sawCenter {
					sawCenter = true
					if !fn(v, int(cur.d)+1) {
						return
					}
				}
				continue
			}
			if m.mark[nb] == m.epoch {
				continue
			}
			m.mark[nb] = m.epoch
			if !fn(nb, int(cur.d)+1) {
				return
			}
			m.queue = append(m.queue, ballEntry{nb, cur.d + 1})
		}
	}
}

// NewMatcher computes the initial relation and returns a matcher registered
// on the graph.
func NewMatcher(g *graph.Graph, q *pattern.Pattern) *Matcher {
	nq := q.NumNodes()
	m := &Matcher{
		g:        g,
		q:        q,
		maxID:    g.MaxID(),
		cand:     make([][]bool, nq),
		outEdges: make([][]pattern.Edge, nq),
		inEdges:  make([][]pattern.Edge, nq),
	}
	m.maxBound, m.unbound = q.MaxBound()
	m.mark = make([]uint32, m.maxID)
	for u := 0; u < nq; u++ {
		m.outEdges[u] = q.OutEdges(pattern.NodeIdx(u))
		m.inEdges[u] = q.InEdges(pattern.NodeIdx(u))
		m.cand[u] = make([]bool, m.maxID)
		pred := q.Node(pattern.NodeIdx(u)).Pred
		g.ForEachNode(func(n graph.Node) {
			if pred.Eval(n) {
				m.cand[u][n.ID] = true
			}
		})
	}
	// Initial refinement: every candidate pair is suspect.
	var seeds []pair
	for u := range m.cand {
		for vi, ok := range m.cand[u] {
			if ok {
				seeds = append(seeds, pair{pattern.NodeIdx(u), graph.NodeID(vi)})
			}
		}
	}
	m.refine(seeds)
	m.version = g.Version()
	return m
}

// Relation returns a snapshot of the maintained M(Q,G) (normalized: empty
// if any pattern node is unmatched).
func (m *Matcher) Relation() *match.Relation {
	r := match.NewRelation(len(m.cand))
	for u := range m.cand {
		for vi, ok := range m.cand[u] {
			if ok {
				r.Add(pattern.NodeIdx(u), graph.NodeID(vi))
			}
		}
	}
	return r.Normalize()
}

// satisfies reports whether data node v meets every out-obligation of
// pattern node u against the current candidate sets. The bounded BFS stops
// at the first supporting match.
func (m *Matcher) satisfies(u pattern.NodeIdx, v graph.NodeID) bool {
	for _, e := range m.outEdges[u] {
		ok := false
		if e.Bound == 1 {
			// Fast path for plain-simulation edges: direct adjacency scan.
			for _, w := range m.g.Out(v) {
				if m.cand[e.To][w] {
					ok = true
					break
				}
			}
		} else {
			tgt := m.cand[e.To]
			m.visitBall(v, e.Bound, false, func(w graph.NodeID, _ int) bool {
				if tgt[w] {
					ok = true
					return false
				}
				return true
			})
		}
		if !ok {
			return false
		}
	}
	return true
}

// refine runs the removal fixpoint: recheck each seeded pair; remove
// violators; cascade rechecks through bounded in-balls of removed matches.
func (m *Matcher) refine(worklist []pair) (removed []pair) {
	for len(worklist) > 0 {
		p := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		if !m.cand[p.u][p.v] || m.satisfies(p.u, p.v) {
			continue
		}
		m.cand[p.u][p.v] = false
		removed = append(removed, p)
		for _, e := range m.inEdges[p.u] {
			src := m.cand[e.From]
			if e.Bound == 1 {
				for _, w := range m.g.In(p.v) {
					if src[w] {
						worklist = append(worklist, pair{e.From, w})
					}
				}
				continue
			}
			from := e.From
			m.visitBall(p.v, e.Bound, true, func(w graph.NodeID, _ int) bool {
				if src[w] {
					worklist = append(worklist, pair{from, w})
				}
				return true
			})
		}
	}
	return removed
}

// Apply applies the updates to the graph and repairs the relation. It
// returns the delta to the (un-normalized) match sets: pairs added and
// pairs removed. Callers who need the normalized delta should diff
// Relation() snapshots (the engine does).
func (m *Matcher) Apply(ops []Update) (added, removed []match.Pair, err error) {
	if m.g.Version() != m.version {
		return nil, nil, ErrStale
	}
	for _, op := range ops {
		if !m.g.Has(op.From) || !m.g.Has(op.To) {
			return nil, nil, graph.ErrNoNode
		}
		if op.Insert {
			if addErr := m.g.AddEdge(op.From, op.To); addErr != nil {
				return nil, nil, addErr
			}
		} else if delErr := m.g.RemoveEdge(op.From, op.To); delErr != nil {
			return nil, nil, delErr
		}
	}
	return m.Sync(ops)
}

// Sync repairs the relation after ops were already applied to the graph
// (e.g. by the engine coordinating several matchers over one graph). The
// seeds are all derived from the post-update graph; this is sound because
// for any candidate whose old support path broke, the path prefix up to
// the *first* deleted edge on it is still intact, placing the candidate in
// that edge source's post-update in-ball.
func (m *Matcher) Sync(ops []Update) (added, removed []match.Pair, err error) {
	var delSeeds []pair
	var insSources []graph.NodeID
	for _, op := range ops {
		if op.Insert {
			insSources = append(insSources, op.From)
		} else {
			delSeeds = append(delSeeds, m.deletionSeeds(op.From)...)
		}
	}

	// Additions: closure of tentative re-admissions seeded upstream of each
	// inserted edge, computed against the fully updated graph.
	tentative := m.admissionClosure(insSources)

	// Final refinement: every tentative pair plus every deletion-affected
	// pair is suspect.
	seeds := append(delSeeds, tentative...)
	removedPairs := m.refine(seeds)

	tentSet := make(map[pair]bool, len(tentative))
	for _, p := range tentative {
		tentSet[p] = true
	}
	for _, p := range tentative {
		if m.cand[p.u][p.v] {
			added = append(added, match.Pair{PNode: p.u, Node: p.v})
		}
	}
	for _, p := range removedPairs {
		// A tentative pair that was admitted then refined away is no
		// change at all; only pre-existing pairs count as removed.
		if !tentSet[p] {
			removed = append(removed, match.Pair{PNode: p.u, Node: p.v})
		}
	}
	m.version = m.g.Version()
	return added, removed, nil
}

// affectRadius returns the reverse-ball radius around an updated edge's
// source within which pattern node u's candidates can be affected: one
// less than u's largest out-edge bound (-1 when any edge is unbounded, and
// -2 — nothing — when u has no obligations).
func (m *Matcher) affectRadius(u int) int {
	radius := -2
	for _, e := range m.outEdges[u] {
		if e.Bound == pattern.Unbounded {
			return -1
		}
		if e.Bound-1 > radius {
			radius = e.Bound - 1
		}
	}
	return radius
}

// deletionSeeds returns the candidate pairs whose bounded out-balls may
// shrink when an out-edge of node a is deleted: for each pattern node with
// obligations, its candidates within bound-1 hops upstream of a (including
// a itself). A seeded pair is fully rechecked by refine, so one seed per
// pair suffices even when several pattern edges are implicated.
func (m *Matcher) deletionSeeds(a graph.NodeID) []pair {
	var seeds []pair
	globalRadius := m.maxBound - 1
	if m.unbound {
		globalRadius = -1 // unbounded edges: full reverse reachability
	}
	for u := range m.cand {
		if len(m.outEdges[u]) > 0 && m.cand[u][a] {
			seeds = append(seeds, pair{pattern.NodeIdx(u), a})
		}
	}
	if globalRadius == 0 || (!m.unbound && m.maxBound == 0) {
		return seeds // all bounds 1 (or no edges): only a itself is affected
	}
	m.visitBall(a, globalRadius, true, func(w graph.NodeID, d int) bool {
		for u := range m.cand {
			if !m.cand[u][w] {
				continue
			}
			if r := m.affectRadius(u); r == -1 || d <= r {
				seeds = append(seeds, pair{pattern.NodeIdx(u), w})
			}
		}
		return true
	})
	return seeds
}

// admissionClosure tentatively re-admits predicate-satisfying non-candidates
// that might have become valid because of inserted edges, transitively: a
// re-admitted match can enable further upstream re-admissions, and mutually
// supporting groups must enter together before refinement judges them.
// The tentative pairs are merged into the candidate sets; refine() strips
// the unjustified ones.
func (m *Matcher) admissionClosure(insSources []graph.NodeID) []pair {
	if len(insSources) == 0 {
		return nil
	}
	var tentative []pair
	queued := map[pair]bool{}
	var queue []pair

	// enqueue (u, v) if v satisfies u's predicate and is not already in.
	consider := func(u pattern.NodeIdx, v graph.NodeID) {
		if m.cand[u][v] {
			return
		}
		p := pair{u, v}
		if queued[p] {
			return
		}
		n, ok := m.g.Node(v)
		if !ok || !m.q.Node(u).Pred.Eval(n) {
			return
		}
		queued[p] = true
		queue = append(queue, p)
	}

	// Seeds: nodes whose out-ball gained members through an inserted edge
	// (a, b) are those within bound-1 hops upstream of a, plus a itself.
	globalRadius := m.maxBound - 1
	if m.unbound {
		globalRadius = -1
	}
	for _, a := range insSources {
		for u := range m.cand {
			if len(m.outEdges[u]) > 0 {
				consider(pattern.NodeIdx(u), a)
			}
		}
		if globalRadius == 0 || (!m.unbound && m.maxBound == 0) {
			continue
		}
		m.visitBall(a, globalRadius, true, func(w graph.NodeID, d int) bool {
			for u := range m.cand {
				if r := m.affectRadius(u); r == -1 || d <= r {
					consider(pattern.NodeIdx(u), w)
				}
			}
			return true
		})
	}

	// Closure: admitting (u, v) can enable any predicate-satisfying node
	// within bound hops upstream of v under a pattern edge (w, u).
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		m.cand[p.u][p.v] = true
		tentative = append(tentative, p)
		for _, e := range m.inEdges[p.u] {
			from := e.From
			if e.Bound == 1 {
				for _, w := range m.g.In(p.v) {
					consider(from, w)
				}
				continue
			}
			m.visitBall(p.v, e.Bound, true, func(w graph.NodeID, _ int) bool {
				consider(from, w)
				return true
			})
		}
	}
	return tentative
}
