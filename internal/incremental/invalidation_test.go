package incremental

import (
	"errors"
	"math/rand"
	"testing"

	"expfinder/internal/bsim"
	"expfinder/internal/graph"
	"expfinder/internal/testutil"
)

// These tests pin the matcher invalidation paths the continuous-query
// subsystem's lazy-recompute fallback relies on (internal/subscribe):
// node removals and attribute changes arriving in the middle of an edge
// update stream, and the ErrStale signal that tells a coordinator the
// matcher can no longer be repaired in place.

// removeNodeLikeEngine replays the engine's node-removal sequence against
// a lone matcher: detach incident edges through the coordinated Sync
// path, clear the node's candidacy, drop the node, refresh the version.
func removeNodeLikeEngine(t *testing.T, g *graph.Graph, m *Matcher, id graph.NodeID) {
	t.Helper()
	var ops []Update
	for _, v := range g.Out(id) {
		ops = append(ops, Delete(id, v))
	}
	for _, u := range g.In(id) {
		if u != id {
			ops = append(ops, Delete(u, id))
		}
	}
	for _, op := range ops {
		if err := g.RemoveEdge(op.From, op.To); err != nil {
			t.Fatalf("detach %+v: %v", op, err)
		}
	}
	if _, _, err := m.Sync(ops); err != nil {
		t.Fatalf("sync detach: %v", err)
	}
	m.SyncNodeRemoving(id)
	if err := g.RemoveNode(id); err != nil {
		t.Fatal(err)
	}
	m.RefreshVersion()
}

// randomStream builds nOps feasible edge updates against scratch.
func randomStream(r *rand.Rand, scratch *graph.Graph, nOps int) []Update {
	nodes := scratch.Nodes()
	var ops []Update
	for len(ops) < nOps {
		u := nodes[r.Intn(len(nodes))]
		v := nodes[r.Intn(len(nodes))]
		if u == v {
			continue
		}
		if scratch.HasEdge(u, v) {
			if scratch.RemoveEdge(u, v) == nil {
				ops = append(ops, Delete(u, v))
			}
		} else if scratch.AddEdge(u, v) == nil {
			ops = append(ops, Insert(u, v))
		}
	}
	return ops
}

// TestNodeRemovalMidStream interleaves node removals with edge churn and
// checks the maintained relation equals a batch recomputation after every
// step — the exactness the subscription fallback depends on when it
// chooses NOT to invalidate (engine-coordinated removals) versus when it
// must (uncoordinated ones).
func TestNodeRemovalMidStream(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(400 + trial)))
		g := testutil.RandomGraph(r, 50, 220)
		q := testutil.RandomPattern(r, 3)
		m := NewMatcher(g, q)
		for round := 0; round < 8; round++ {
			if round%3 == 2 {
				nodes := g.Nodes()
				removeNodeLikeEngine(t, g, m, nodes[r.Intn(len(nodes))])
			} else {
				ops := randomStream(r, g.Clone(), 1+r.Intn(5))
				if _, _, err := m.Apply(ops); err != nil {
					t.Fatalf("trial %d round %d: %v", trial, round, err)
				}
			}
			if want := bsim.Compute(g, q); !m.Relation().Equal(want) {
				t.Fatalf("trial %d round %d: relation diverged\n got %v\nwant %v",
					trial, round, m.Relation(), want)
			}
		}
	}
}

// TestAttrChangeMidStream interleaves attribute flips (the other
// invalidation trigger) with edge churn, checking both the maintained
// relation and the exactness of the reported deltas.
func TestAttrChangeMidStream(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(600 + trial)))
		g := testutil.RandomGraph(r, 50, 220)
		q := testutil.RandomPattern(r, 3)
		m := NewMatcher(g, q)
		for round := 0; round < 8; round++ {
			before := m.Relation()
			if round%2 == 1 {
				nodes := g.Nodes()
				id := nodes[r.Intn(len(nodes))]
				if err := g.SetAttr(id, "experience", graph.Int(int64(r.Intn(10)))); err != nil {
					t.Fatal(err)
				}
				if _, _, err := m.SyncAttrChanged(id); err != nil {
					t.Fatal(err)
				}
			} else {
				ops := randomStream(r, g.Clone(), 1+r.Intn(5))
				if _, _, err := m.Apply(ops); err != nil {
					t.Fatal(err)
				}
			}
			after := m.Relation()
			if want := bsim.Compute(g, q); !after.Equal(want) {
				t.Fatalf("trial %d round %d: relation diverged", trial, round)
			}
			// The normalized diff of snapshots must replay cleanly — this
			// is exactly how subscription deltas are derived.
			added, removed := before.Diff(after)
			replay := before.Clone()
			for _, p := range removed {
				replay.Remove(p.PNode, p.Node)
			}
			for _, p := range added {
				replay.Add(p.PNode, p.Node)
			}
			if !replay.Equal(after) {
				t.Fatalf("trial %d round %d: snapshot diff does not replay", trial, round)
			}
		}
	}
}

// TestStaleMatcherSignalsRecompute pins the contract behind the lazy
// fallback: a graph mutated outside the matcher's coordinated paths
// refuses further Apply calls with ErrStale, and a rebuilt matcher
// (what the subscription hub does) restores the exact relation.
func TestStaleMatcherSignalsRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := testutil.RandomGraph(r, 40, 160)
	q := testutil.RandomPattern(r, 3)
	m := NewMatcher(g, q)

	// Uncoordinated mutation: the version moves, the matcher must balk.
	nodes := g.Nodes()
	if err := g.SetAttr(nodes[0], "experience", graph.Int(9)); err != nil {
		t.Fatal(err)
	}
	ops := randomStream(r, g.Clone(), 3)
	if _, _, err := m.Apply(ops); !errors.Is(err, ErrStale) {
		t.Fatalf("stale Apply: err = %v, want ErrStale", err)
	}

	// The fallback: rebuild from the current graph and continue streaming.
	m = NewMatcher(g, q)
	if _, _, err := m.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if want := bsim.Compute(g, q); !m.Relation().Equal(want) {
		t.Fatalf("rebuilt matcher diverged:\n got %v\nwant %v", m.Relation(), want)
	}
}
