package incremental

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"expfinder/internal/bsim"
	"expfinder/internal/dataset"
	"expfinder/internal/graph"
	"expfinder/internal/pattern"
	"expfinder/internal/testutil"
)

// TestPaperExample3 is the acceptance test for the paper's Example 3:
// inserting e1 yields exactly ΔM = {(SD, Fred)}, discovered incrementally.
func TestPaperExample3(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)

	before := m.Relation()
	if before.Size() != 7 {
		t.Fatalf("initial relation size = %d, want 7", before.Size())
	}

	e1 := dataset.E1(p)
	added, removed, err := m.Apply([]Update{Insert(e1.From, e1.To)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	sd, _ := q.Lookup("SD")
	if len(removed) != 0 {
		t.Errorf("unexpected removals: %v", removed)
	}
	if len(added) != 1 || added[0].PNode != sd || added[0].Node != p.Fred {
		t.Errorf("added = %v, want exactly (SD, Fred=%d)", added, p.Fred)
	}
	// And the maintained relation equals batch recomputation.
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("incremental relation diverged from batch recompute")
	}
}

func TestDeletionRemovesMatches(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)

	// Deleting Dan->Eva breaks Dan's SD->ST obligation (Dan no longer
	// reaches Eva within 2).
	added, removed, err := m.Apply([]Update{Delete(p.Dan, p.Eva)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(added) != 0 {
		t.Errorf("unexpected additions: %v", added)
	}
	sd, _ := q.Lookup("SD")
	foundDan := false
	for _, pr := range removed {
		if pr.PNode == sd && pr.Node == p.Dan {
			foundDan = true
		}
	}
	if !foundDan {
		t.Errorf("removed = %v, expected (SD, Dan)", removed)
	}
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("incremental relation diverged from batch recompute")
	}
}

func TestCascadingDeletion(t *testing.T) {
	// Chain pattern A->B->C with bound 1 on a chain graph: deleting the
	// b->c edge removes (C unaffected) B's match, which cascades to A.
	g := graph.New(3)
	a := g.AddNode("A", nil)
	b := g.AddNode("B", nil)
	c := g.AddNode("C", nil)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	q, err := pattern.Parse("node A [label=A] output\nnode B [label=B]\nnode C [label=C]\nedge A -> B\nedge B -> C\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g, q)
	if m.Relation().Size() != 3 {
		t.Fatalf("initial size = %d, want 3", m.Relation().Size())
	}
	_, removed, err := m.Apply([]Update{Delete(b, c)})
	if err != nil {
		t.Fatal(err)
	}
	// B loses its match and A cascades (normalized relation is empty).
	if len(removed) != 2 {
		t.Errorf("removed = %v, want cascade of 2 pairs", removed)
	}
	if !m.Relation().IsEmpty() {
		t.Errorf("relation should be empty after cascade, got %v", m.Relation())
	}
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("diverged from batch recompute")
	}
}

func TestMutuallySupportingAdmission(t *testing.T) {
	// Pattern X->Y (1), Y->X (1): matches need a 2-cycle. Start without the
	// closing edge, then insert it: both pairs must enter together — a
	// one-at-a-time admission check would deadlock and find neither.
	g := graph.New(2)
	x := g.AddNode("X", nil)
	y := g.AddNode("Y", nil)
	if err := g.AddEdge(x, y); err != nil {
		t.Fatal(err)
	}
	q, err := pattern.Parse("node X [label=X] output\nnode Y [label=Y]\nedge X -> Y\nedge Y -> X\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g, q)
	if !m.Relation().IsEmpty() {
		t.Fatalf("initial relation should be empty, got %v", m.Relation())
	}
	added, _, err := m.Apply([]Update{Insert(y, x)})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 {
		t.Errorf("added = %v, want both (X,x) and (Y,y)", added)
	}
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("diverged from batch recompute")
	}
}

func TestApplyRejectsStaleMatcher(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	// Mutate the graph behind the matcher's back.
	if err := g.SetAttr(p.Bob, "experience", graph.Int(9)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply([]Update{Insert(p.Fred, p.Pat)}); !errors.Is(err, ErrStale) {
		t.Errorf("Apply on stale matcher err = %v, want ErrStale", err)
	}
}

func TestApplyRejectsUnknownNodes(t *testing.T) {
	g, _ := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	if _, _, err := m.Apply([]Update{Insert(0, 99)}); !errors.Is(err, graph.ErrNoNode) {
		t.Errorf("err = %v, want ErrNoNode", err)
	}
}

func TestInsertThenDeleteRoundTrips(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	before := m.Relation()

	e1 := dataset.E1(p)
	if _, _, err := m.Apply([]Update{Insert(e1.From, e1.To)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply([]Update{Delete(e1.From, e1.To)}); err != nil {
		t.Fatal(err)
	}
	if !m.Relation().Equal(before) {
		t.Error("insert+delete did not restore the original relation")
	}
}

func TestBatchMixedUpdates(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	e1 := dataset.E1(p)
	// One batch: admit Fred and evict Dan.
	_, _, err := m.Apply([]Update{
		Insert(e1.From, e1.To),
		Delete(p.Dan, p.Eva),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("batch apply diverged from batch recompute")
	}
	sd, _ := q.Lookup("SD")
	r := m.Relation()
	if !r.Has(sd, p.Fred) || r.Has(sd, p.Dan) {
		t.Errorf("SD matches = %v, want Fred in and Dan out", r.MatchesOf(sd))
	}
}

// The central correctness property: after any random sequence of unit
// updates, the incrementally maintained relation equals batch recompute.
func TestQuickIncrementalEqualsBatchUnit(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(r, 18, 40)
		q := testutil.RandomPattern(r, 1+r.Intn(3))
		shadow := g.Clone()
		m := NewMatcher(shadow, q)
		ops := testutil.RandomOps(r, g, 15) // applied to g as generated
		for _, op := range ops {
			if _, _, err := m.Apply([]Update{{Insert: op.Insert, From: op.From, To: op.To}}); err != nil {
				return false
			}
			// Compare against scratch recomputation on the true graph.
			if !m.Relation().Equal(bsim.Compute(shadow, q)) {
				return false
			}
		}
		return g.Equal(shadow)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Batch variant: all updates in one Apply call.
func TestQuickIncrementalEqualsBatchBulk(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(r, 18, 40)
		q := testutil.RandomPattern(r, 1+r.Intn(3))
		shadow := g.Clone()
		m := NewMatcher(shadow, q)
		ops := testutil.RandomOps(r, g, 20)
		batch := make([]Update, len(ops))
		for i, op := range ops {
			batch[i] = Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		if _, _, err := m.Apply(batch); err != nil {
			return false
		}
		return m.Relation().Equal(bsim.Compute(shadow, q)) && g.Equal(shadow)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Unbounded pattern edges exercise the full-reachability code paths.
func TestQuickIncrementalUnboundedEdges(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(r, 15, 30)
		q := pattern.New()
		a := q.MustAddNode("A", pattern.Predicate{}.And(pattern.LabelAttr, pattern.OpEq, graph.String("SA")))
		b := q.MustAddNode("B", pattern.Predicate{}.And(pattern.LabelAttr, pattern.OpEq, graph.String("SD")))
		c := q.MustAddNode("C", pattern.Predicate{}.And(pattern.LabelAttr, pattern.OpEq, graph.String("ST")))
		q.MustAddEdge(a, b, pattern.Unbounded)
		q.MustAddEdge(b, c, 2)
		if err := q.SetOutput(a); err != nil {
			panic(err)
		}
		shadow := g.Clone()
		m := NewMatcher(shadow, q)
		ops := testutil.RandomOps(r, g, 12)
		batch := make([]Update, len(ops))
		for i, op := range ops {
			batch[i] = Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		if _, _, err := m.Apply(batch); err != nil {
			return false
		}
		return m.Relation().Equal(bsim.Compute(shadow, q))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDeltasAreExact(t *testing.T) {
	// added/removed must exactly describe the un-normalized set change.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := testutil.RandomGraph(r, 15, 35)
		q := testutil.RandomPattern(r, 2)
		m := NewMatcher(g, q)
		// Snapshot un-normalized sets via satisfies-independent copy.
		type pr struct {
			u pattern.NodeIdx
			v graph.NodeID
		}
		snapshot := map[pr]bool{}
		for u := 0; u < q.NumNodes(); u++ {
			for _, v := range m.Relation().MatchesOf(pattern.NodeIdx(u)) {
				snapshot[pr{pattern.NodeIdx(u), v}] = true
			}
		}
		gg := g // matcher owns g now
		ops := testutil.RandomOps(r, gg.Clone(), 6)
		batch := make([]Update, len(ops))
		for i, op := range ops {
			batch[i] = Update{Insert: op.Insert, From: op.From, To: op.To}
		}
		added, removed, err := m.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range added {
			if snapshot[pr{p.PNode, p.Node}] {
				t.Errorf("trial %d: pair %v reported added but pre-existing", trial, p)
			}
		}
		for _, p := range removed {
			if m.Relation().Has(p.PNode, p.Node) {
				t.Errorf("trial %d: pair %v reported removed but still present", trial, p)
			}
		}
	}
}
