package incremental

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expfinder/internal/bsim"
	"expfinder/internal/dataset"
	"expfinder/internal/graph"
	"expfinder/internal/testutil"
)

func TestSyncNodeAdded(t *testing.T) {
	g, _ := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)

	// A node matching no predicate changes nothing.
	dud := g.AddNode("GD", graph.Attrs{"experience": graph.Int(1)})
	if added := m.SyncNodeAdded(dud); len(added) != 0 {
		t.Errorf("dud addition matched: %v", added)
	}
	// A predicate-satisfying node with obligations cannot match while
	// isolated (the paper query's SA needs downstream collaborators).
	isolatedSA := g.AddNode("SA", graph.Attrs{"experience": graph.Int(9)})
	if added := m.SyncNodeAdded(isolatedSA); len(added) != 0 {
		t.Errorf("isolated SA matched: %v", added)
	}
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("diverged from batch recompute after node additions")
	}
}

func TestSyncNodeAddedWithEdgesViaApply(t *testing.T) {
	// Adding a node and then wiring it with edge updates must land exactly
	// where batch recomputation does.
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	// A senior SA who takes over Bob's team.
	newSA := g.AddNode("SA", graph.Attrs{"experience": graph.Int(8)})
	m.SyncNodeAdded(newSA)
	_, _, err := m.Apply([]Update{
		Insert(newSA, p.Dan), Insert(newSA, p.Bill),
	})
	if err != nil {
		t.Fatal(err)
	}
	// newSA: SD within 2 (Dan), ST within... SA->ST isn't in Q; SA->BA
	// bound 3 via Bill->Pat->Jean = 3.
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("diverged from batch recompute")
	}
	sa, _ := q.Lookup("SA")
	if !m.Relation().Has(sa, newSA) {
		t.Error("wired-in SA not matched")
	}
}

func TestSyncNodeRemoving(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	// Engine-style removal of Eva: detach edges first, then clear.
	var ops []Update
	for _, v := range g.Out(p.Eva) {
		ops = append(ops, Delete(p.Eva, v))
	}
	for _, u := range g.In(p.Eva) {
		ops = append(ops, Delete(u, p.Eva))
	}
	if _, _, err := m.Apply(ops); err != nil {
		t.Fatal(err)
	}
	m.SyncNodeRemoving(p.Eva)
	if err := g.RemoveNode(p.Eva); err != nil {
		t.Fatal(err)
	}
	m.RefreshVersion()
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("diverged from batch recompute after node removal")
	}
	// Without the only qualifying tester, the whole team dissolves.
	if !m.Relation().IsEmpty() {
		t.Errorf("relation should be empty without Eva: %v", m.Relation())
	}
}

func TestSyncAttrChangedDisqualifies(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	// Bob's experience drops below the SA threshold.
	if err := g.SetAttr(p.Bob, "experience", graph.Int(3)); err != nil {
		t.Fatal(err)
	}
	added, removed, err := m.SyncAttrChanged(p.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Errorf("unexpected additions: %v", added)
	}
	sa, _ := q.Lookup("SA")
	foundBob := false
	for _, pr := range removed {
		if pr.PNode == sa && pr.Node == p.Bob {
			foundBob = true
		}
	}
	if !foundBob {
		t.Errorf("removed = %v, want (SA, Bob)", removed)
	}
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("diverged from batch recompute")
	}
}

func TestSyncAttrChangedQualifies(t *testing.T) {
	g, p := dataset.PaperGraph()
	q := dataset.PaperQuery()
	m := NewMatcher(g, q)
	// Tess gains experience and becomes a qualifying tester.
	if err := g.SetAttr(p.Tess, "experience", graph.Int(4)); err != nil {
		t.Fatal(err)
	}
	added, _, err := m.SyncAttrChanged(p.Tess)
	if err != nil {
		t.Fatal(err)
	}
	// Tess(ST) needs an SD within 1: Tess->Fred, and Fred needs an ST
	// within 2: Fred->Tess — mutually supporting, both enter.
	if len(added) < 2 {
		t.Errorf("added = %v, want Tess and Fred entering together", added)
	}
	if !m.Relation().Equal(bsim.Compute(g, q)) {
		t.Error("diverged from batch recompute")
	}
}

// Property: interleaved node additions, attribute flips, edge updates and
// engine-style node removals all track batch recomputation.
func TestQuickNodeOpsEqualBatch(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(r, 15, 35)
		q := testutil.RandomPattern(r, 1+r.Intn(3))
		m := NewMatcher(g, q)
		for step := 0; step < 12; step++ {
			switch r.Intn(4) {
			case 0: // add node
				id := g.AddNode(testutil.Labels[r.Intn(len(testutil.Labels))],
					graph.Attrs{"experience": graph.Int(int64(r.Intn(10)))})
				m.SyncNodeAdded(id)
			case 1: // attribute flip
				nodes := g.Nodes()
				id := nodes[r.Intn(len(nodes))]
				if err := g.SetAttr(id, "experience", graph.Int(int64(r.Intn(10)))); err != nil {
					return false
				}
				if _, _, err := m.SyncAttrChanged(id); err != nil {
					return false
				}
			case 2: // edge update
				ops := testutil.RandomOps(r, g, 1)
				// RandomOps already applied the op to g; sync only.
				if _, _, err := m.Sync([]Update{{Insert: ops[0].Insert, From: ops[0].From, To: ops[0].To}}); err != nil {
					return false
				}
			case 3: // engine-style node removal
				nodes := g.Nodes()
				if len(nodes) < 5 {
					continue
				}
				id := nodes[r.Intn(len(nodes))]
				var ops []Update
				for _, v := range g.Out(id) {
					ops = append(ops, Delete(id, v))
				}
				for _, u := range g.In(id) {
					if u != id {
						ops = append(ops, Delete(u, id))
					}
				}
				for _, op := range ops {
					if err := g.RemoveEdge(op.From, op.To); err != nil {
						return false
					}
				}
				if _, _, err := m.Sync(ops); err != nil {
					return false
				}
				m.SyncNodeRemoving(id)
				if err := g.RemoveNode(id); err != nil {
					return false
				}
				m.RefreshVersion()
			}
			if !m.Relation().Equal(bsim.Compute(g, q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
