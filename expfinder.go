// Package expfinder is a library for finding experts in social networks by
// graph pattern matching, a from-scratch reproduction of the system in
// "ExpFinder: Finding Experts by Graph Pattern Matching" (Fan, Wang, Wu —
// ICDE 2013).
//
// The core idea: express hiring-style requirements as a small pattern graph
// whose nodes carry search conditions ("a system architect with >= 5 years")
// and whose edges carry collaboration-distance bounds ("worked with a
// developer within 2 hops"), evaluate it under bounded graph simulation —
// cubic time, unlike NP-complete subgraph isomorphism — and rank the
// matches of a designated output node by social impact (average distance to
// the rest of the matched team).
//
// Quick start:
//
//	g := expfinder.NewGraph(0)
//	bob := g.AddNode("SA", expfinder.Attrs{
//	    "name":       expfinder.String("Bob"),
//	    "experience": expfinder.Int(7),
//	})
//	// ... add more people and collaboration edges ...
//
//	q, _ := expfinder.ParseQuery(`
//	    node SA [label = "SA", experience >= 5] output
//	    node SD [label = "SD", experience >= 2]
//	    edge SA -> SD bound 2
//	`)
//	eng := expfinder.NewEngine(expfinder.EngineOptions{})
//	eng.AddGraph("team", g)
//	res, _ := eng.Query("team", q, 3) // top-3 experts
//	for _, r := range res.TopK {
//	    fmt.Println(g.MustNode(r.Node).Attrs["name"], r.Rank)
//	}
//	_ = bob
//
// Beyond one-shot queries, the engine supports the full ExpFinder system:
// registered queries maintained incrementally under edge updates
// (RegisterQuery / ApplyUpdates), continuous queries streaming match
// deltas to subscribers (Engine.Subscribe / PushUpdates), query-preserving
// graph compression (CompressGraph), a landmark distance index
// (BuildIndex), edge-cut graph partitioning with partition-parallel
// evaluation (Engine.PartitionGraph), a result cache, file-based graph
// storage, synthetic social-network generators, and an HTTP server
// (cmd/expfinder-server) standing in for the demo's GUI.
package expfinder

import (
	"io"

	"expfinder/internal/bsim"
	"expfinder/internal/compress"
	"expfinder/internal/distindex"
	"expfinder/internal/engine"
	"expfinder/internal/generator"
	"expfinder/internal/graph"
	"expfinder/internal/incremental"
	"expfinder/internal/isomorphism"
	"expfinder/internal/match"
	"expfinder/internal/partition"
	"expfinder/internal/pattern"
	"expfinder/internal/rank"
	"expfinder/internal/simulation"
	"expfinder/internal/storage"
	"expfinder/internal/strongsim"
	"expfinder/internal/subscribe"
	"expfinder/internal/wal"
)

// Graph model.
type (
	// Graph is a directed graph with labeled, attributed nodes.
	Graph = graph.Graph
	// NodeID identifies a node within a Graph.
	NodeID = graph.NodeID
	// Node is one node with its label and attributes.
	Node = graph.Node
	// Edge is a directed edge.
	Edge = graph.Edge
	// Attrs maps attribute names to typed values.
	Attrs = graph.Attrs
	// Value is a typed attribute value.
	Value = graph.Value
	// GraphStats summarizes a graph.
	GraphStats = graph.Stats
)

// NewGraph returns an empty graph with a capacity hint.
func NewGraph(nHint int) *Graph { return graph.New(nHint) }

// ReadGraphJSON parses a graph from its JSON form.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return graph.ReadJSON(r) }

// Attribute value constructors.
var (
	// String makes a string attribute value.
	String = graph.String
	// Int makes an integer attribute value.
	Int = graph.Int
	// Float makes a floating-point attribute value.
	Float = graph.Float
	// Bool makes a boolean attribute value.
	Bool = graph.Bool
)

// Unreachable is the distance reported for unreachable node pairs.
const Unreachable = graph.Unreachable

// Pattern queries.
type (
	// Query is a pattern query: predicate nodes, bounded edges, an output node.
	Query = pattern.Pattern
	// QueryNodeIdx indexes a node within a Query.
	QueryNodeIdx = pattern.NodeIdx
	// Predicate is a conjunction of attribute comparisons.
	Predicate = pattern.Predicate
	// Condition is a single attribute comparison.
	Condition = pattern.Condition
	// Op is a comparison operator.
	Op = pattern.Op
)

// Comparison operators for search conditions.
const (
	OpEq       = pattern.OpEq
	OpNe       = pattern.OpNe
	OpLt       = pattern.OpLt
	OpLe       = pattern.OpLe
	OpGt       = pattern.OpGt
	OpGe       = pattern.OpGe
	OpContains = pattern.OpContains
	OpPrefix   = pattern.OpPrefix
)

// Unbounded marks a pattern edge matched by a path of any length.
const Unbounded = pattern.Unbounded

// LabelAttr is the reserved condition attribute that tests a node's label.
const LabelAttr = pattern.LabelAttr

// NewQuery returns an empty pattern query.
func NewQuery() *Query { return pattern.New() }

// ParseQuery parses the pattern DSL:
//
//	node SA [label = "SA", experience >= 5] output
//	node SD [label = "SD"]
//	edge SA -> SD bound 2
func ParseQuery(dsl string) (*Query, error) { return pattern.Parse(dsl) }

// MinimizeQuery returns an equivalent, typically smaller query (duplicate
// nodes merged, implied edges dropped) with the node-index mapping. The
// match relation is preserved exactly; result-graph edges derived from
// removed pattern edges are not, so minimize before matching, not before
// ranking comparisons across the two forms.
func MinimizeQuery(q *Query) (*Query, []QueryNodeIdx) { return pattern.Minimize(q) }

// Matching results.
type (
	// MatchRelation is the match relation M(Q,G).
	MatchRelation = match.Relation
	// MatchPair is one (pattern node, data node) match.
	MatchPair = match.Pair
	// ResultGraph is the weighted graph over matches used for display and
	// ranking.
	ResultGraph = match.ResultGraph
	// Ranked is an output-node match with its social-impact rank.
	Ranked = rank.Ranked
)

// Match evaluates q on g under bounded simulation and returns the unique
// maximum match relation. Plain graph simulation is the special case where
// every bound is 1; the engine selects it automatically.
func Match(g *Graph, q *Query) *MatchRelation { return bsim.Compute(g, q) }

// MatchParallel is Match with the dominant support-counting phase spread
// over the given number of worker goroutines; results are identical.
func MatchParallel(g *Graph, q *Query, workers int) *MatchRelation {
	return bsim.ComputeParallel(g, q, workers)
}

// MatchSimulation evaluates q under plain graph simulation (every pattern
// edge must map to a single data edge).
func MatchSimulation(g *Graph, q *Query) *MatchRelation { return simulation.Compute(g, q) }

// MatchDual evaluates q under (bounded) dual simulation: in addition to
// bounded simulation's descendant obligations, every pattern in-edge must
// be witnessed by a matching ancestor. Stricter than Match; the natural
// topology-preserving extension from the same research line.
func MatchDual(g *Graph, q *Query) *MatchRelation { return strongsim.Dual(g, q) }

// PerfectSubgraph is one strong-simulation result: a localized match.
type PerfectSubgraph = strongsim.PerfectSubgraph

// MatchStrong evaluates q under strong simulation: dual simulation
// restricted to balls of radius equal to the pattern diameter, returning
// the deduplicated set of perfect subgraphs.
func MatchStrong(g *Graph, q *Query) []PerfectSubgraph { return strongsim.Strong(g, q) }

// BuildResultGraph constructs the weighted result graph for a relation.
func BuildResultGraph(g *Graph, q *Query, r *MatchRelation) *ResultGraph {
	return match.BuildResultGraph(g, q, r)
}

// TopK ranks the matches of q's output node by social impact (lower rank =
// shorter average collaboration distance) and returns the best k.
func TopK(g *Graph, q *Query, r *MatchRelation, k int) []Ranked {
	return rank.TopK(g, q, r, k)
}

// RankMetric scores experts within a result graph; lower is better. The
// paper's metric is MetricAvgDistance; the others realize its remark that
// "other metrics can be readily supported".
type RankMetric = rank.Metric

// Built-in ranking metrics.
var (
	// MetricAvgDistance is the paper's social-impact rank f().
	MetricAvgDistance RankMetric = rank.AvgDistance{}
	// MetricCloseness is inverse closeness centrality.
	MetricCloseness RankMetric = rank.Closeness{}
	// MetricDegree prefers experts touching more of the matched team.
	MetricDegree RankMetric = rank.Degree{}
	// MetricPageRank prefers experts central to the team's structure.
	MetricPageRank RankMetric = rank.PageRank{}
)

// TopKByMetric is TopK under an alternative ranking metric.
func TopKByMetric(g *Graph, q *Query, r *MatchRelation, k int, metric RankMetric) []Ranked {
	return rank.TopKByMetric(g, q, r, k, metric)
}

// TopKOnResult re-ranks an engine query result under another metric
// without rebuilding the result graph.
func TopKOnResult(res *QueryResult, q *Query, k int, metric RankMetric) []Ranked {
	return rank.TopKByMetricWithResultGraph(res.ResultGraph, q, res.Relation, k, metric)
}

// Engine.
type (
	// Engine manages graphs and runs the full query pipeline: cache,
	// incremental maintenance, compression routing, plan selection.
	Engine = engine.Engine
	// EngineOptions configures an Engine. Parallelism bounds concurrent
	// query executions (QueryBatch/QueryAsync and overlapping Query
	// calls) and the bounded-simulation worker fan-out; 0 means
	// GOMAXPROCS.
	EngineOptions = engine.Options
	// QueryResult is a query answer with provenance.
	QueryResult = engine.Result
	// UpdateDelta reports how a registered query's matches changed.
	UpdateDelta = engine.Delta
	// Update is an edge insertion or deletion.
	Update = incremental.Update
	// BatchQuery names one query of an Engine.QueryBatch call.
	BatchQuery = engine.QueryRequest
	// BatchOutcome is the per-query answer of Engine.QueryBatch and
	// Engine.QueryAsync: exactly one of Result and Err is set.
	BatchOutcome = engine.QueryOutcome
)

// NewEngine returns an engine.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// InsertEdge builds an edge-insertion update.
func InsertEdge(from, to NodeID) Update { return incremental.Insert(from, to) }

// DeleteEdge builds an edge-deletion update.
func DeleteEdge(from, to NodeID) Update { return incremental.Delete(from, to) }

// Incremental matching without an engine.
type (
	// IncrementalMatcher maintains one query's matches under edge updates.
	IncrementalMatcher = incremental.Matcher
)

// Continuous queries: register a pattern once with Engine.Subscribe and
// receive the match deltas — pairs entering and leaving M(Q,G), and
// optionally re-ranked top-K experts — as updates stream into the graph.
// A subscription's first event is a snapshot; folding the event sequence
// through a SubscriptionMirror reconstructs the exact relation a fresh
// Match would compute, no matter how updates interleave (property-tested).
// Slow consumers never stall updates: bounded buffers coalesce bursts and
// degrade to a resync snapshot on overflow.
type (
	// Subscription is one client's handle on a continuous query; consume
	// with Next (blocking) or Poll.
	Subscription = subscribe.Subscription
	// SubscriptionOptions sets per-subscription ranking (K), buffering,
	// and coalescing.
	SubscriptionOptions = subscribe.Options
	// SubscriptionEvent is one snapshot or delta notification.
	SubscriptionEvent = subscribe.Event
	// SubscriptionInfo is a subscription's observable state.
	SubscriptionInfo = subscribe.Info
	// SubscriptionStats aggregates the engine's subscription counters.
	SubscriptionStats = subscribe.Stats
	// SubscriptionMirror materializes an event stream back into the
	// current match relation.
	SubscriptionMirror = subscribe.Mirror
)

// Subscription event kinds.
const (
	// EventSnapshot events carry the full current relation.
	EventSnapshot = subscribe.Snapshot
	// EventDelta events carry added and removed match pairs.
	EventDelta = subscribe.Delta
)

// ErrSubscriptionClosed terminates Next once a subscription is closed
// and drained; subscriptions on a removed graph end with
// subscribe.ErrGraphRemoved instead.
var ErrSubscriptionClosed = subscribe.ErrClosed

// NewSubscriptionMirror returns a mirror for patterns with n nodes
// (q.NumNodes() for the subscribed query).
func NewSubscriptionMirror(n int) *SubscriptionMirror { return subscribe.NewMirror(n) }

// NewIncrementalMatcher computes M(Q,G) and registers for maintenance. The
// matcher owns subsequent edge updates to g (use Apply).
func NewIncrementalMatcher(g *Graph, q *Query) *IncrementalMatcher {
	return incremental.NewMatcher(g, q)
}

// Compression.
type (
	// CompressedGraph is a query-preserving quotient of a data graph.
	CompressedGraph = compress.Compressed
	// CompressionScheme selects the equivalence relation.
	CompressionScheme = compress.Scheme
	// AttrView restricts which attributes compression distinguishes.
	AttrView = compress.View
	// CompressUpdate is an edge update applied through a compressed
	// graph's Maintain method.
	CompressUpdate = compress.Update
)

// Compression schemes.
const (
	// Bisimulation preserves simulation and bounded simulation.
	Bisimulation = compress.Bisimulation
	// SimulationEquivalence compresses more but preserves only plain
	// simulation.
	SimulationEquivalence = compress.SimulationEquivalence
)

// CompressGraph builds the quotient of g distinguishing all attributes.
func CompressGraph(g *Graph, scheme CompressionScheme) *CompressedGraph {
	return compress.Compress(g, scheme)
}

// CompressGraphWithView builds the quotient distinguishing only the viewed
// attributes (more compression; only queries over those attributes may be
// answered on it).
func CompressGraphWithView(g *Graph, scheme CompressionScheme, view AttrView) *CompressedGraph {
	return compress.CompressWithView(g, scheme, view)
}

// Distance index.
type (
	// DistanceIndex is a landmark labeling over a graph answering
	// bounded-reachability queries in near-constant time. Build one per
	// graph (Engine.BuildIndex for managed graphs) and pass it to
	// MatchIndexed / MatchDualIndexed, or let the engine route through
	// it automatically.
	DistanceIndex = distindex.Index
	// DistanceIndexOptions configures BuildDistanceIndex.
	DistanceIndexOptions = distindex.Options
	// DistanceIndexStats summarizes an index.
	DistanceIndexStats = distindex.Stats
)

// BuildDistanceIndex constructs a landmark distance index over g. The
// zero options select every node as a landmark (complete cover: every
// query answered from labels alone).
func BuildDistanceIndex(g *Graph, opts DistanceIndexOptions) *DistanceIndex {
	return distindex.Build(g, opts)
}

// MatchIndexed is Match with support counters answered through a distance
// index; the relation is identical, the work can be far smaller for
// selective predicates with deep bounds. An index built over a different
// graph cannot answer for g — the call then degrades to plain Match
// rather than computing garbage.
func MatchIndexed(g *Graph, q *Query, ix *DistanceIndex) *MatchRelation {
	if ix == nil || ix.Graph() != g {
		return bsim.Compute(g, q)
	}
	return bsim.ComputeIndexed(g, q, ix)
}

// MatchDualIndexed is MatchDual accelerated by a distance index, under
// the same graph-identity guard as MatchIndexed.
func MatchDualIndexed(g *Graph, q *Query, ix *DistanceIndex) *MatchRelation {
	if ix == nil || ix.Graph() != g {
		return strongsim.Dual(g, q)
	}
	return strongsim.DualIndexed(g, q, ix)
}

// Partitioned graphs: edge-cut sharding plus a partition-parallel
// evaluator. Each fragment refines the candidates of the nodes it owns
// concurrently and removals crossing a fragment boundary travel as
// counted decrement deltas exchanged at superstep barriers — the result
// is byte-identical to Match / MatchDual for every fragment count. For
// managed graphs use Engine.PartitionGraph and let plan selection route
// shallow bounded queries through the partitioned plan automatically.
type (
	// GraphPartitioning is an edge-cut sharding of one graph.
	GraphPartitioning = partition.Partitioning
	// PartitionOptions configures PartitionGraph (fragment count and
	// assignment strategy).
	PartitionOptions = partition.Options
	// PartitionStrategy selects the node-to-fragment assignment policy.
	PartitionStrategy = partition.Strategy
	// PartitionStats summarizes fragments, cut edges, ghosts, and the
	// cumulative boundary-exchange volume.
	PartitionStats = partition.Stats
	// PartitionEvalStats reports one partition-parallel evaluation's
	// supersteps and boundary-exchange volume.
	PartitionEvalStats = partition.EvalStats
)

// Partitioning strategies.
const (
	// PartitionGreedy is locality-aware streaming assignment: fewer cut
	// edges, deterministic.
	PartitionGreedy = partition.StrategyGreedy
	// PartitionHash is stateless hashed assignment: perfectly balanced,
	// topology-blind.
	PartitionHash = partition.StrategyHash
)

// PartitionGraph shards g into fragments (opts.Parts <= 0 means
// GOMAXPROCS).
func PartitionGraph(g *Graph, opts PartitionOptions) (*GraphPartitioning, error) {
	return partition.Partition(g, opts)
}

// MatchPartitioned is Match evaluated fragment-parallel over pt, with
// the boundary-exchange stats of the run; the relation is identical to
// Match's.
func MatchPartitioned(g *Graph, q *Query, pt *GraphPartitioning) (*MatchRelation, PartitionEvalStats, error) {
	return partition.Eval(g, q, pt, partition.Bounded)
}

// MatchDualPartitioned is MatchDual evaluated fragment-parallel over pt.
func MatchDualPartitioned(g *Graph, q *Query, pt *GraphPartitioning) (*MatchRelation, PartitionEvalStats, error) {
	return partition.Eval(g, q, pt, partition.Dual)
}

// Generators.
type (
	// GeneratorConfig parameterizes the synthetic graph generators.
	GeneratorConfig = generator.Config
	// GeneratorKind names a generator.
	GeneratorKind = generator.Kind
)

// Generator kinds.
const (
	GenErdosRenyi     = generator.KindER
	GenBarabasiAlbert = generator.KindBA
	GenCollaboration  = generator.KindCollab
	GenTwitter        = generator.KindTwit
)

// Generate builds a synthetic social network.
func Generate(kind GeneratorKind, cfg GeneratorConfig) (*Graph, error) {
	return generator.Generate(kind, cfg)
}

// Storage.
type (
	// Store is a directory-backed repository of graphs and results.
	Store = storage.Store
	// StoreFormat selects the on-disk graph format.
	StoreFormat = storage.Format
)

// On-disk graph formats.
const (
	FormatJSON   = storage.FormatJSON
	FormatBinary = storage.FormatBinary
)

// OpenStore creates/opens a store rooted at dir.
func OpenStore(dir string) (*Store, error) { return storage.Open(dir) }

// Durable persistence: pass an open PersistenceManager as
// EngineOptions.Persistence and every mutation of every managed graph
// becomes durable — appended to a per-graph write-ahead log, snapshotted
// by a background checkpointer, and replayed by Engine.Recover() at the
// next boot. Call Engine.Close() on shutdown to flush the log.
type (
	// PersistenceManager owns the write-ahead logs and snapshots under
	// one data directory.
	PersistenceManager = wal.Manager
	// PersistenceOptions configures OpenPersistence (directory, fsync
	// policy, segment/checkpoint sizing).
	PersistenceOptions = wal.Options
	// FsyncPolicy selects when log records reach stable storage.
	FsyncPolicy = wal.FsyncPolicy
	// PersistenceStats aggregates log-manager counters and per-graph
	// WAL/snapshot state.
	PersistenceStats = wal.Stats
	// RecoverySummary reports Engine.Recover's per-graph outcomes.
	RecoverySummary = engine.RecoverySummary
)

// Fsync policies.
const (
	// FsyncAlways syncs after every mutation batch.
	FsyncAlways = wal.FsyncAlways
	// FsyncInterval (the default) syncs on a short ticker: bounded loss.
	FsyncInterval = wal.FsyncInterval
	// FsyncOff writes through to the OS but never syncs.
	FsyncOff = wal.FsyncOff
)

// OpenPersistence opens (creating if needed) a durability manager rooted
// at opts.Dir.
func OpenPersistence(opts PersistenceOptions) (*PersistenceManager, error) { return wal.Open(opts) }

// EdgeListOptions configures ImportEdgeList.
type EdgeListOptions = storage.EdgeListOptions

// ImportEdgeList parses a SNAP-style edge list ("src dst" per line, #
// comments) into a graph, returning the external-id mapping. Combine with
// ApplyNodeTable for labels and attributes.
func ImportEdgeList(r io.Reader, opts EdgeListOptions) (*Graph, map[int64]NodeID, error) {
	return storage.ReadEdgeList(r, opts)
}

// ApplyNodeTable applies a node attribute CSV (header: id,label,attr...)
// to an imported graph.
func ApplyNodeTable(r io.Reader, g *Graph, idMap map[int64]NodeID) error {
	return storage.ApplyNodeTable(r, g, idMap)
}

// Baselines.
type (
	// IsoOptions bounds the subgraph-isomorphism baseline search.
	IsoOptions = isomorphism.Options
	// IsoResult carries isomorphism embeddings and statistics.
	IsoResult = isomorphism.Result
)

// MatchIsomorphism runs the VF2-style subgraph-isomorphism baseline — the
// comparison point the paper argues against, kept for experiments.
func MatchIsomorphism(g *Graph, q *Query, opts IsoOptions) *IsoResult {
	return isomorphism.Find(g, q, opts)
}
