package expfinder_test

import (
	"fmt"

	"expfinder"
)

// buildExampleOrg builds the small org used by the examples below.
func buildExampleOrg() (*expfinder.Graph, map[string]expfinder.NodeID) {
	g := expfinder.NewGraph(6)
	ids := map[string]expfinder.NodeID{}
	add := func(name, field string, years int64) {
		ids[name] = g.AddNode(field, expfinder.Attrs{
			"name":       expfinder.String(name),
			"experience": expfinder.Int(years),
		})
	}
	add("Ada", "SA", 9)
	add("Raj", "SD", 4)
	add("Ivy", "SD", 3)
	add("Kim", "ST", 3)
	add("Mia", "BA", 5)
	for _, e := range [][2]string{
		{"Ada", "Raj"}, {"Ada", "Ivy"}, {"Raj", "Kim"}, {"Ivy", "Kim"}, {"Ada", "Mia"},
	} {
		if err := g.AddEdge(ids[e[0]], ids[e[1]]); err != nil {
			panic(err)
		}
	}
	return g, ids
}

// The simplest possible use: parse a query, match, rank.
func Example() {
	g, _ := buildExampleOrg()
	q, err := expfinder.ParseQuery(`
node SA [label = "SA", experience >= 5] output
node SD [label = "SD", experience >= 2]
edge SA -> SD bound 2
`)
	if err != nil {
		panic(err)
	}
	rel := expfinder.Match(g, q)
	for _, r := range expfinder.TopK(g, q, rel, 1) {
		name, _ := g.Attr(r.Node, "name")
		fmt.Printf("best architect: %s (rank %.2f)\n", name.Str(), r.Rank)
	}
	// Output: best architect: Ada (rank 1.00)
}

// ParseQuery understands bounds, the unbounded `*`, and rich predicates.
func ExampleParseQuery() {
	q, err := expfinder.ParseQuery(`
# any senior person reachable from a tester, however far
node Senior [experience >= 8] output
node Tester [label = "ST"]
edge Tester -> Senior bound *
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q.NumNodes(), "nodes,", q.NumEdges(), "edge")
	// Output: 2 nodes, 1 edge
}

// The match relation reports every pattern position's matches, not just
// the output node's.
func ExampleMatch() {
	g, _ := buildExampleOrg()
	q, err := expfinder.ParseQuery(`
node SA [label = "SA"] output
node SD [label = "SD"]
edge SA -> SD bound 1
`)
	if err != nil {
		panic(err)
	}
	rel := expfinder.Match(g, q)
	fmt.Println(rel.Format(q, g, "name"))
	// Output:
	// SA -> Ada
	// SD -> Raj, Ivy
}

// The engine adds caching, registered queries and update maintenance.
func ExampleEngine() {
	g, ids := buildExampleOrg()
	q, err := expfinder.ParseQuery(`
node SA [label = "SA"] output
node ST [label = "ST"]
edge SA -> ST bound 2
`)
	if err != nil {
		panic(err)
	}
	eng := expfinder.NewEngine(expfinder.EngineOptions{})
	if err := eng.AddGraph("org", g); err != nil {
		panic(err)
	}
	if err := eng.RegisterQuery("org", q); err != nil {
		panic(err)
	}
	// Kim leaves Raj's project: Ada can still reach her through Ivy, so
	// the match survives; the delta is empty.
	deltas, err := eng.ApplyUpdates("org", []expfinder.Update{
		expfinder.DeleteEdge(ids["Raj"], ids["Kim"]),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("changes:", len(deltas[0].Added)+len(deltas[0].Removed))
	res, err := eng.Query("org", q, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("source:", res.Source)
	// Output:
	// changes: 0
	// source: incremental
}

// Compression answers queries on a smaller quotient graph, exactly.
func ExampleCompressGraphWithView() {
	g, _ := buildExampleOrg()
	q, err := expfinder.ParseQuery(`
node SD [label = "SD"] output
node ST [label = "ST"]
edge SD -> ST bound 1
`)
	if err != nil {
		panic(err)
	}
	// Raj and Ivy differ only on non-viewed attributes, so a label-only
	// view merges them.
	c := expfinder.CompressGraphWithView(g, expfinder.Bisimulation, expfinder.AttrView{})
	direct := expfinder.Match(g, q)
	viaQuotient := c.Decompress(expfinder.Match(c.Graph(), q))
	fmt.Println("exact:", viaQuotient.Equal(direct))
	fmt.Println("blocks:", c.Graph().NumNodes(), "of", g.NumNodes())
	// Output:
	// exact: true
	// blocks: 4 of 5
}
