// Jobmatch shows ExpFinder's matching semantics ladder on a recommendation
// scenario (the paper notes the same machinery recommends jobs, movies or
// travel plans). A staffing graph mixes genuine project pods with
// look-alike noise; the example contrasts what each semantics returns:
//
//   - bounded simulation: the maximum relation — everything that could fit;
//
//   - dual simulation: additionally demands the surrounding structure
//     (a mentor upstream), pruning orphans;
//
//   - strong simulation: localizes matches into perfect subgraphs — the
//     actual pods worth recommending as a unit.
//
//     go run ./examples/jobmatch
package main

import (
	"fmt"
	"log"

	"expfinder"
)

func main() {
	g := expfinder.NewGraph(16)
	person := func(name, role string, years int64) expfinder.NodeID {
		return g.AddNode(role, expfinder.Attrs{
			"name":       expfinder.String(name),
			"experience": expfinder.Int(years),
		})
	}
	edge := func(a, b expfinder.NodeID) {
		if err := g.AddEdge(a, b); err != nil {
			log.Fatal(err)
		}
	}

	// Pod 1: a complete mentoring pod.
	lena := person("Lena", "Mentor", 10)
	omar := person("Omar", "Engineer", 4)
	pia := person("Pia", "Engineer", 3)
	kai := person("Kai", "Reviewer", 6)
	edge(lena, omar)
	edge(lena, pia)
	edge(omar, kai)
	edge(pia, kai)
	edge(kai, lena) // reviewers report back to the mentor

	// Pod 2: another complete pod, far from pod 1.
	noa := person("Noa", "Mentor", 8)
	raf := person("Raf", "Engineer", 5)
	zoe := person("Zoe", "Reviewer", 7)
	edge(noa, raf)
	edge(raf, zoe)
	edge(zoe, noa)

	// Noise: an engineer with a reviewer but *no mentor* (orphan), and a
	// mentor whose "engineer" is too junior.
	ben := person("Ben", "Engineer", 6)
	ana := person("Ana", "Reviewer", 5)
	edge(ben, ana)
	ana2 := person("Gil", "Mentor", 9)
	jun := person("Jun", "Engineer", 1)
	edge(ana2, jun)

	// The recommendation pattern: an engineer (output) who feeds a
	// reviewer and — crucially, as a *parent* obligation that only dual
	// simulation enforces — is mentored by a senior mentor.
	q, err := expfinder.ParseQuery(`
node Mentor   [label = "Mentor", experience >= 7]
node Engineer [label = "Engineer", experience >= 2] output
node Reviewer [label = "Reviewer"]
edge Mentor -> Engineer bound 1
edge Engineer -> Reviewer bound 1
`)
	if err != nil {
		log.Fatal(err)
	}
	names := func(rel *expfinder.MatchRelation, idx expfinder.QueryNodeIdx) []string {
		var out []string
		for _, v := range rel.MatchesOf(idx) {
			n, _ := g.Attr(v, "name")
			out = append(out, n.Str())
		}
		return out
	}
	engIdx, _ := q.Lookup("Engineer")

	bounded := expfinder.Match(g, q)
	fmt.Printf("bounded simulation recommends: %v\n", names(bounded, engIdx))

	dual := expfinder.MatchDual(g, q)
	fmt.Printf("dual simulation recommends:    %v (orphans pruned)\n", names(dual, engIdx))

	fmt.Println("strong simulation pods:")
	for _, sub := range expfinder.MatchStrong(g, q) {
		center, _ := g.Attr(sub.Center, "name")
		fmt.Printf("  around %-4s -> engineers %v\n", center.Str(), names(sub.Relation, engIdx))
	}

	// Rank the dual-simulation engineers for the final shortlist.
	fmt.Println("\nshortlist (social-impact rank over the dual matches):")
	for i, r := range expfinder.TopK(g, q, dual, 3) {
		n, _ := g.Attr(r.Node, "name")
		fmt.Printf("  %d. %-4s rank %.3f\n", i+1, n.Str(), r.Rank)
	}
}
