// Dynamicnet simulates a living social network: a generated collaboration
// graph receives a stream of edge updates while a registered hiring query
// is kept answered incrementally. It contrasts the incremental cost per
// batch with full recomputation and shows the maintained result staying
// exact throughout.
//
//	go run ./examples/dynamicnet [-nodes 5000] [-batches 20] [-batchsize 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"expfinder"
)

func main() {
	nodes := flag.Int("nodes", 5000, "network size")
	batches := flag.Int("batches", 20, "number of update batches")
	batchSize := flag.Int("batchsize", 50, "edge updates per batch")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := expfinder.Generate(expfinder.GenCollaboration, expfinder.GeneratorConfig{
		Nodes: *nodes, AvgDegree: 8, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d people, %d collaborations\n", g.NumNodes(), g.NumEdges())

	q, err := expfinder.ParseQuery(`
node SA [label = "SA", experience >= 5] output
node SD [label = "SD", experience >= 2]
node BA [label = "BA", experience >= 3]
node ST [label = "ST", experience >= 2]
edge SA -> SD bound 2
edge SA -> BA bound 3
edge SD -> ST bound 2
`)
	if err != nil {
		log.Fatal(err)
	}

	// The engine keeps the registered query maintained; the mirror is used
	// to time what a from-scratch recomputation would cost.
	eng := expfinder.NewEngine(expfinder.EngineOptions{})
	if err := eng.AddGraph("net", g); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := eng.RegisterQuery("net", q); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial evaluation: %s\n\n", time.Since(start))

	r := rand.New(rand.NewSource(*seed + 99))
	mirror := g.Clone()
	var totalInc, totalBatch time.Duration
	for b := 0; b < *batches; b++ {
		ops := randomOps(r, mirror, *batchSize)

		t0 := time.Now()
		deltas, err := eng.ApplyUpdates("net", ops)
		if err != nil {
			log.Fatal(err)
		}
		dInc := time.Since(t0)
		totalInc += dInc

		t1 := time.Now()
		fresh := expfinder.Match(mirror, q)
		dBatch := time.Since(t1)
		totalBatch += dBatch

		// The maintained answer must equal the recomputed one.
		res, err := eng.Query("net", q, 0)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Relation.Equal(fresh) {
			log.Fatalf("batch %d: incremental result diverged", b)
		}
		changed := 0
		for _, d := range deltas {
			changed += len(d.Added) + len(d.Removed)
		}
		fmt.Printf("batch %2d: %3d updates -> %3d match changes | incremental %-12s batch %-12s\n",
			b, len(ops), changed, dInc, dBatch)
	}
	fmt.Printf("\ntotals over %d batches: incremental %s, recompute %s (%.1fx)\n",
		*batches, totalInc, totalBatch, float64(totalBatch)/float64(totalInc))
}

// randomOps generates applicable edge updates, applying them to the mirror
// so subsequent batches stay consistent.
func randomOps(r *rand.Rand, mirror *expfinder.Graph, n int) []expfinder.Update {
	nodes := mirror.Nodes()
	var ops []expfinder.Update
	for len(ops) < n {
		u := nodes[r.Intn(len(nodes))]
		v := nodes[r.Intn(len(nodes))]
		if u == v {
			continue
		}
		if mirror.HasEdge(u, v) {
			if mirror.RemoveEdge(u, v) == nil {
				ops = append(ops, expfinder.DeleteEdge(u, v))
			}
		} else if mirror.AddEdge(u, v) == nil {
			ops = append(ops, expfinder.InsertEdge(u, v))
		}
	}
	return ops
}
