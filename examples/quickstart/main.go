// Quickstart: build a small collaboration network, express a hiring
// requirement as a pattern query, and print the ranked experts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"expfinder"
)

func main() {
	// A ten-person engineering org. Node labels are fields; attributes
	// carry the name and years of experience.
	g := expfinder.NewGraph(10)
	person := func(name, field string, years int64) expfinder.NodeID {
		return g.AddNode(field, expfinder.Attrs{
			"name":       expfinder.String(name),
			"experience": expfinder.Int(years),
		})
	}
	ada := person("Ada", "SA", 9)
	sam := person("Sam", "SA", 6)
	dev1 := person("Raj", "SD", 4)
	dev2 := person("Ivy", "SD", 3)
	dev3 := person("Tom", "SD", 1) // too junior to match
	ana := person("Mia", "BA", 5)
	tst := person("Kim", "ST", 3)

	// Directed collaboration edges: who led whom on past projects.
	collaborations := [][2]expfinder.NodeID{
		{ada, dev1}, {ada, dev2}, {dev1, tst}, {dev2, tst},
		{ada, ana}, {sam, dev3}, {dev3, tst}, {sam, ana},
	}
	for _, e := range collaborations {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// The requirement: an architect (>= 5y) who has led a developer
	// (>= 2y) within two hops, an analyst within two hops, and whose
	// developers worked with a tester directly.
	q, err := expfinder.ParseQuery(`
node SA [label = "SA", experience >= 5] output
node SD [label = "SD", experience >= 2]
node BA [label = "BA"]
node ST [label = "ST"]
edge SA -> SD bound 2
edge SA -> BA bound 2
edge SD -> ST bound 1
`)
	if err != nil {
		log.Fatal(err)
	}

	rel := expfinder.Match(g, q) // bounded graph simulation
	fmt.Println("match relation M(Q,G):")
	fmt.Println(rel.Format(q, g, "name"))

	fmt.Println("\nranked architects (lower rank = tighter collaboration):")
	for i, r := range expfinder.TopK(g, q, rel, 3) {
		name, _ := g.Attr(r.Node, "name")
		fmt.Printf("  %d. %-4s rank %.3f (connected to %d matched teammates)\n",
			i+1, name.Str(), r.Rank, r.Connected)
	}
}
