// Compression demonstrates query-preserving graph compression: generate a
// structured collaboration network, compress it under both schemes, verify
// that queries answered on the quotient (plus linear decompression) match
// direct evaluation exactly, and show the quotient being maintained
// incrementally as the network changes.
//
//	go run ./examples/compression [-nodes 5000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"expfinder"
)

func main() {
	nodes := flag.Int("nodes", 5000, "network size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := expfinder.Generate(expfinder.GenCollaboration, expfinder.GeneratorConfig{
		Nodes: *nodes, AvgDegree: 8, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	q, err := expfinder.ParseQuery(`
node SA [label = "SA", experience >= 5] output
node SD [label = "SD", experience >= 2]
node ST [label = "ST", experience >= 2]
edge SA -> SD bound 2
edge SD -> ST bound 2
`)
	if err != nil {
		log.Fatal(err)
	}

	// Bisimulation quotient over the attributes the query tests: exact for
	// bounded simulation, maintainable under updates.
	view := expfinder.AttrView{"experience"}
	c := expfinder.CompressGraphWithView(g, expfinder.Bisimulation, view)
	fmt.Printf("bisimulation quotient: %d nodes, %d edges (%.1f%% smaller)\n",
		c.Graph().NumNodes(), c.Graph().NumEdges(), c.Ratio()*100)

	t0 := time.Now()
	direct := expfinder.Match(g, q)
	dDirect := time.Since(t0)
	t1 := time.Now()
	expanded := c.Decompress(expfinder.Match(c.Graph(), q))
	dQuotient := time.Since(t1)
	if !expanded.Equal(direct) {
		log.Fatal("compressed evaluation diverged from direct evaluation")
	}
	fmt.Printf("query on G: %s | on Gc + decompress: %s (%.1f%% faster), results identical\n",
		dDirect, dQuotient, (1-float64(dQuotient)/float64(dDirect))*100)

	// The coarser simulation-equivalence quotient for bound-1 queries.
	se := expfinder.CompressGraphWithView(g, expfinder.SimulationEquivalence, expfinder.AttrView{})
	fmt.Printf("simulation-equivalence quotient (label view): %d nodes (%.1f%% smaller)\n",
		se.Graph().NumNodes(), se.Ratio()*100)

	// Incremental maintenance: apply updates through the quotient and
	// re-verify exactness.
	fmt.Println("\nmaintaining the quotient through 5 update batches:")
	r := rand.New(rand.NewSource(*seed + 7))
	for b := 0; b < 5; b++ {
		ops := makeOps(r, g, 20)
		t := time.Now()
		if err := c.Maintain(ops); err != nil {
			log.Fatal(err)
		}
		d := time.Since(t)
		expanded := c.Decompress(expfinder.Match(c.Graph(), q))
		if !expanded.Equal(expfinder.Match(g, q)) {
			log.Fatal("maintained quotient diverged")
		}
		fmt.Printf("  batch %d: 20 updates maintained in %s (quotient now %d nodes), still exact\n",
			b, d, c.Graph().NumNodes())
	}
	c.Rebuild()
	fmt.Printf("after Rebuild: %d nodes (%.1f%% smaller)\n", c.Graph().NumNodes(), c.Ratio()*100)
}

// makeOps builds a batch of applicable edge updates against the current
// state of g, avoiding duplicate pairs within the batch (Maintain applies
// the ops itself).
func makeOps(r *rand.Rand, g *expfinder.Graph, n int) []expfinder.CompressUpdate {
	nodes := g.Nodes()
	var ops []expfinder.CompressUpdate
	seen := map[[2]expfinder.NodeID]bool{}
	for len(ops) < n {
		u := nodes[r.Intn(len(nodes))]
		v := nodes[r.Intn(len(nodes))]
		if u == v || seen[[2]expfinder.NodeID{u, v}] {
			continue
		}
		seen[[2]expfinder.NodeID{u, v}] = true
		ops = append(ops, expfinder.CompressUpdate{Insert: !g.HasEdge(u, v), From: u, To: v})
	}
	return ops
}
