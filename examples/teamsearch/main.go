// Teamsearch reproduces the paper's running example end to end: the Fig. 1
// collaboration network and query, the exact match relation of Example 1,
// the ranking of Example 2 (f(SA,Bob) = 9/5 beats f(SA,Walt) = 7/3), and
// the incremental update of Example 3 (inserting e1 admits exactly
// (SD, Fred)) — all through the engine, with the result graph exported as
// Graphviz DOT.
//
//	go run ./examples/teamsearch
package main

import (
	"fmt"
	"log"
	"os"

	"expfinder"
	"expfinder/internal/dataset"
	"expfinder/internal/viz"
)

func main() {
	g, people := dataset.PaperGraph()
	q := dataset.PaperQuery()

	eng := expfinder.NewEngine(expfinder.EngineOptions{})
	if err := eng.AddGraph("paper", g); err != nil {
		log.Fatal(err)
	}
	// Register the hiring query so updates are maintained incrementally.
	if err := eng.RegisterQuery("paper", q); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Query("paper", q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 1 — M(Q,G) via %s (%s):\n", res.Plan, res.Source)
	fmt.Println(res.Relation.Format(q, g, "name"))

	fmt.Println("\nExample 2 — social-impact ranking of SA candidates:")
	for i, r := range res.TopK {
		name, _ := g.Attr(r.Node, "name")
		fmt.Printf("  %d. %-5s f = %.4f\n", i+1, name.Str(), r.Rank)
	}

	fmt.Println("\nExample 3 — Dan's project wraps up and Fred starts pairing with Pat:")
	e1 := dataset.E1(people)
	deltas, err := eng.ApplyUpdates("paper", []expfinder.Update{
		expfinder.InsertEdge(e1.From, e1.To),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range deltas {
		for _, p := range d.Added {
			name, _ := g.Attr(p.Node, "name")
			fmt.Printf("  + (%s, %s) found incrementally, without re-running Q\n",
				q.Node(p.PNode).Name, name.Str())
		}
	}

	// Export the post-update result graph with the top expert highlighted.
	res, err = eng.Query("paper", q, 1)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("teamsearch-result.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WriteTopK(f, g, res.ResultGraph, res.TopK, viz.Options{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult graph written to teamsearch-result.dot (render with `dot -Tsvg`)")
}
