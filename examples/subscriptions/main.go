// Subscriptions demonstrates continuous queries: two clients subscribe
// to hiring patterns on a generated collaboration network, a stream of
// edge updates is pushed through the engine, and each client follows its
// standing query through snapshot + delta events alone — folding them
// through a mirror and checking the result against a fresh evaluation at
// the end. One client re-ranks its top experts on every change.
//
//	go run ./examples/subscriptions [-nodes 3000] [-batches 15] [-batchsize 30]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"expfinder"
)

func main() {
	nodes := flag.Int("nodes", 3000, "network size")
	batches := flag.Int("batches", 15, "number of update batches")
	batchSize := flag.Int("batchsize", 30, "edge updates per batch")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := expfinder.Generate(expfinder.GenCollaboration, expfinder.GeneratorConfig{
		Nodes: *nodes, AvgDegree: 8, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d people, %d collaborations\n", g.NumNodes(), g.NumEdges())

	teamQuery, err := expfinder.ParseQuery(`
node SA [label = "SA", experience >= 5] output
node SD [label = "SD", experience >= 2]
node BA [label = "BA", experience >= 3]
edge SA -> SD bound 2
edge SA -> BA bound 3
`)
	if err != nil {
		log.Fatal(err)
	}
	expertQuery, err := expfinder.ParseQuery(`
node SA [label = "SA", experience >= 8] output
node SD [label = "SD", experience >= 4]
edge SA -> SD bound 2
`)
	if err != nil {
		log.Fatal(err)
	}

	eng := expfinder.NewEngine(expfinder.EngineOptions{})
	if err := eng.AddGraph("net", g); err != nil {
		log.Fatal(err)
	}

	// Client 1 follows the team pattern's relation; client 2 watches a
	// stricter pattern and re-ranks its top-3 experts on every change.
	team, err := eng.Subscribe("net", teamQuery, expfinder.SubscriptionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	experts, err := eng.Subscribe("net", expertQuery, expfinder.SubscriptionOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	teamMirror := expfinder.NewSubscriptionMirror(teamQuery.NumNodes())
	expertMirror := expfinder.NewSubscriptionMirror(expertQuery.NumNodes())

	drain := func(s *expfinder.Subscription, mi *expfinder.SubscriptionMirror, name string) {
		for {
			ev, ok := s.Poll()
			if !ok {
				return
			}
			if err := mi.Apply(ev); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			switch ev.Kind {
			case expfinder.EventSnapshot:
				fmt.Printf("  %-7s rev %-3d snapshot: %d pairs\n", name, ev.Seq, len(ev.Pairs))
			case expfinder.EventDelta:
				fmt.Printf("  %-7s rev %-3d delta: +%d -%d", name, ev.Seq, len(ev.Added), len(ev.Removed))
				if len(ev.TopK) > 0 {
					fmt.Printf("  top expert: node %d (rank %.2f)", ev.TopK[0].Node, ev.TopK[0].Rank)
				}
				fmt.Println()
			}
		}
	}
	drain(team, teamMirror, "team")
	drain(experts, expertMirror, "experts")

	// Stream random edge churn through the engine; every batch fans match
	// deltas out to both standing queries.
	r := rand.New(rand.NewSource(*seed + 99))
	var pushed time.Duration
	for b := 0; b < *batches; b++ {
		var ops []expfinder.Update
		if err := eng.WithGraph("net", func(gg *expfinder.Graph) error {
			scratch := gg.Clone()
			nodeIDs := scratch.Nodes()
			for len(ops) < *batchSize {
				u := nodeIDs[r.Intn(len(nodeIDs))]
				v := nodeIDs[r.Intn(len(nodeIDs))]
				if u == v {
					continue
				}
				if scratch.HasEdge(u, v) {
					if scratch.RemoveEdge(u, v) == nil {
						ops = append(ops, expfinder.DeleteEdge(u, v))
					}
				} else if scratch.AddEdge(u, v) == nil {
					ops = append(ops, expfinder.InsertEdge(u, v))
				}
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, _, err := eng.PushUpdates("net", ops); err != nil {
			log.Fatal(err)
		}
		pushed += time.Since(start)
		fmt.Printf("batch %2d (%d updates):\n", b+1, len(ops))
		drain(team, teamMirror, "team")
		drain(experts, expertMirror, "experts")
	}

	// Both mirrors must now agree byte-for-byte with fresh evaluations.
	if err := eng.WithGraph("net", func(gg *expfinder.Graph) error {
		for _, c := range []struct {
			name string
			q    *expfinder.Query
			mi   *expfinder.SubscriptionMirror
		}{{"team", teamQuery, teamMirror}, {"experts", expertQuery, expertMirror}} {
			want := expfinder.Match(gg, c.q)
			if c.mi.Relation().String() != want.String() {
				return fmt.Errorf("%s mirror diverged from fresh Match", c.name)
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	st := eng.SubscriptionStats()
	fmt.Printf("\n%d batches streamed in %s total push time\n", *batches, pushed)
	fmt.Printf("hub: %d subscriptions, %d deltas published, %d coalesced\n",
		st.Subscriptions, st.Published, st.Coalesced)
	fmt.Println("mirrors verified byte-identical to fresh evaluation — deltas alone were enough")
}
